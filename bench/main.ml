(* Benchmark harness: one subcommand per table/figure of the paper's
   evaluation (section 6), plus bechamel micro-benchmarks and ablations.

     dune exec bench/main.exe            -- run everything, scaled down
     dune exec bench/main.exe -- fig5    -- a single experiment
     dune exec bench/main.exe -- all --full --duration 1.0

   Absolute numbers depend on this machine and the injected NVRAM latency;
   the paper's claims are throughput *ratios* between systems at equal thread
   counts, which is what every table prints (see EXPERIMENTS.md). *)

open Workload
module I = Harness.Instance

let pr fmt = Printf.printf fmt

type opts = {
  duration : float;
  threads : int list;
  full : bool;
  seed : int;
  write_ns : int;
  json : string option;
  sanitize : bool;
  latency : bool;
  trace : string option;
}

(* One Chrome trace builder per process when [--trace FILE] was given; each
   traced throughput point lands under its own pid with a labelled track. *)
let trace_builder : Trace.Chrome_trace.t option ref = ref None
let trace_next_pid = ref 0

let trace_builder_for opts =
  match opts.trace with
  | None -> None
  | Some _ ->
      (match !trace_builder with
      | None -> trace_builder := Some (Trace.Chrome_trace.create ())
      | Some _ -> ());
      !trace_builder

let write_trace opts =
  match (opts.trace, !trace_builder) with
  | Some path, Some b ->
      Trace.Chrome_trace.write_file b path;
      pr "wrote %d trace events to %s\n%!" (Trace.Chrome_trace.event_count b) path
  | _ -> ()

(* --write-ns 0 (the default) auto-calibrates the injected latency to this
   machine's simulated-heap load cost (see Harness.Calibrate). Memoized so
   every point of a run sees the same injected latency. *)
let calibrated_write_ns = lazy (Harness.Calibrate.write_ns ())

let base_write_ns opts =
  if opts.write_ns > 0 then opts.write_ns else Lazy.force calibrated_write_ns

let latency opts =
  let l = Nvm.Latency_model.default () in
  l.nvram_write_ns <- base_write_ns opts;
  l

(* Per-(structure, op) latency percentiles and persistence-cost attribution
   for one traced point: a text line per op with --latency, "latency" and
   "attribution" JSON records with --json, and the point's retained spans
   appended to the Chrome trace with --trace. *)
let report_tracer opts tr ~structure ~flavor ~size ~nthreads ~mix_name =
  let hists = Trace.Nvtrace.histograms tr in
  let atts = Trace.Nvtrace.attribution tr in
  let point_fields =
    Json_out.
      [
        ("structure", S (I.structure_name structure));
        ("flavor", S (I.flavor_name flavor));
        ("size", I size);
        ("threads", I nthreads);
        ("mix", S mix_name);
      ]
  in
  if opts.latency then
    List.iter
      (fun (op, h) ->
        let open Trace.Nvtrace in
        let a = List.assoc op atts in
        let per v = float_of_int v /. float_of_int (max 1 a.ops) in
        pr
          "  latency %-18s n=%-9d p50=%-9s p99=%-9s p99.9=%-9s | wb/op %.2f \
           fence/op %.2f lines/op %.2f\n"
          op
          (Histogram.count h)
          (Report.human_ns (Histogram.percentile h 50.))
          (Report.human_ns (Histogram.percentile h 99.))
          (Report.human_ns (Histogram.percentile h 99.9))
          (per a.a_write_backs) (per a.a_fences) (per a.a_lines_drained))
      hists;
  if Json_out.enabled () then begin
    List.iter
      (fun (op, h) ->
        Json_out.add ~kind:"latency"
          (point_fields
          @ Json_out.
              [
                ("op", S op);
                ("count", I (Histogram.count h));
                ("p50_ns", F (Histogram.percentile h 50.));
                ("p99_ns", F (Histogram.percentile h 99.));
                ("p999_ns", F (Histogram.percentile h 99.9));
                ("mean_ns", F (Histogram.mean h));
                ("max_ns", F (Histogram.max_ns h));
              ]))
      hists;
    List.iter
      (fun (op, a) ->
        let open Trace.Nvtrace in
        Json_out.add ~kind:"attribution"
          (point_fields
          @ Json_out.
              [
                ("op", S op);
                ("ops", I a.ops);
                ("total_ns", F a.total_ns);
                ("loads", I a.a_loads);
                ("stores", I a.a_stores);
                ("cas", I a.a_cas);
                ("write_backs", I a.a_write_backs);
                ("fences", I a.a_fences);
                ("sync_batches", I a.a_sync_batches);
                ("lines_drained", I a.a_lines_drained);
                ("lc_adds", I a.a_lc_adds);
                ("lc_fails", I a.a_lc_fails);
                ( "wb_per_op",
                  F (float_of_int a.a_write_backs /. float_of_int (max 1 a.ops)) );
              ]))
      atts
  end;
  match trace_builder_for opts with
  | None -> ()
  | Some b ->
      let pid = !trace_next_pid in
      incr trace_next_pid;
      Trace.Chrome_trace.add_process b ~pid
        ~name:
          (Printf.sprintf "%s/%s size=%d t=%d %s" (I.structure_name structure)
             (I.flavor_name flavor) size nthreads mix_name);
      Trace.Chrome_trace.add_spans b ~pid (Trace.Nvtrace.spans tr)

(* Build an instance, prefill to steady state, run the update workload, and
   return throughput (ops/s). With [--json] each point also records an
   nvlf-bench/2 "throughput" record carrying the substrate counters of the
   measured window (stats are reset after prefill). *)
let throughput_point ?(mix_name = "update") opts ~structure ~flavor ~size ~nthreads
    ~mix =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(latency opts) ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.ctx in
  (* --sanitize: NVSan shadows the whole run (prefill included, so every
     node is tracked); the Log baseline doesn't speak link-and-persist, so
     it runs unobserved. *)
  let san =
    if opts.sanitize && flavor <> I.Log then
      Some
        (Sanitizer.Nvsan.attach
           ~config:
             {
               (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor))
               with
               root_limit = Lfds.Ctx.static_limit inst.ctx;
             }
           heap)
    else None
  in
  Keygen.prefill inst.ops ~size ~seed:opts.seed;
  Nvm.Heap.reset_stats heap;
  (* --latency / --trace: flight-record the measured window (post-prefill,
     post-reset) so span attribution matches the substrate counters. *)
  let tracer =
    if opts.latency || opts.trace <> None then Some (Trace.Nvtrace.attach heap)
    else None
  in
  let range = Keygen.range_for ~size in
  let r =
    Run.throughput ~nthreads ~duration:opts.duration
      ~step:(Run.set_workload inst.ops ~mix ~range)
      ~seed:opts.seed ()
  in
  (match tracer with
  | None -> ()
  | Some tr ->
      Trace.Nvtrace.detach tr;
      report_tracer opts tr ~structure ~flavor ~size ~nthreads ~mix_name);
  (match san with
  | None -> ()
  | Some s ->
      Sanitizer.Nvsan.detach s;
      let n = Sanitizer.Nvsan.violation_count s in
      if n > 0 then begin
        List.iter
          (fun v -> print_endline ("  " ^ Sanitizer.Nvsan.violation_to_string v))
          (Sanitizer.Nvsan.violations s);
        pr "sanitizer: %d violation(s) in %s/%s\n%!" n
          (I.structure_name structure) (I.flavor_name flavor)
      end);
  if Json_out.enabled () then
    Json_out.add ~kind:"throughput"
      (Json_out.
         [
           ("structure", S (I.structure_name structure));
           ("flavor", S (I.flavor_name flavor));
           ("size", I size);
           ("threads", I nthreads);
           ("mix", S mix_name);
           ("duration", F opts.duration);
           ("write_ns", I (base_write_ns opts));
           ("seed", I opts.seed);
           ("ops_per_s", F r.throughput);
           ("substrate", substrate_fields (Nvm.Heap.aggregate_stats heap));
         ]
      @ if opts.sanitize then [ ("sanitized", Json_out.I 1) ] else []);
  r.throughput

let ratio_row opts ~structure ~size ~mix ~flavors ~nthreads =
  let base = throughput_point opts ~structure ~flavor:I.Log ~size ~nthreads ~mix in
  List.map
    (fun flavor ->
      let tp = throughput_point opts ~structure ~flavor ~size ~nthreads ~mix in
      let ratio = tp /. base in
      Json_out.add ~kind:"ratio"
        Json_out.
          [
            ("structure", S (I.structure_name structure));
            ("flavor", S (I.flavor_name flavor));
            ("vs", S (I.flavor_name I.Log));
            ("size", I size);
            ("threads", I nthreads);
            ("write_ns", I (base_write_ns opts));
            ("ratio", F ratio);
            ("ops_per_s", F tp);
            ("base_ops_per_s", F base);
          ];
      ratio)
    flavors

(* ------------------------------------------------------------------ *)
(* Table 1: latency model + measured primitive costs.                 *)

let table1 opts =
  let l = latency opts in
  pr "calibration: simulated load = %.1f ns; injected NVRAM write = %d ns (paper: 125 ns at 2 ns loads)\n"
    (Harness.Calibrate.load_ns ()) l.nvram_write_ns;
  Report.table ~title:"Table 1: memory hierarchy latency model (ns)"
    ~header:[ "level"; "read"; "write" ]
    [
      [ "DRAM"; string_of_int l.dram_read_ns; string_of_int l.dram_write_ns ];
      [
        "NVRAM (simulated)";
        string_of_int l.nvram_read_ns;
        string_of_int l.nvram_write_ns;
      ];
    ];
  (* Measured cost of the primitives under the injected model. *)
  let heap = Nvm.Heap.create ~latency:l ~size_words:4096 () in
  let time_op name n f =
    let t0 = Unix.gettimeofday () in
    for i = 1 to n do
      f i
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9 in
    [ name; Report.human_ns dt ]
  in
  Report.table ~title:"Measured primitive costs (simulated heap, injection on)"
    ~header:[ "primitive"; "cost" ]
    [
      time_op "load" 100000 (fun i -> ignore (Nvm.Heap.load heap ~tid:0 (i land 1023)));
      time_op "store" 100000 (fun i -> Nvm.Heap.store heap ~tid:0 (i land 1023) i);
      time_op "cas" 100000 (fun i ->
          ignore
            (Nvm.Heap.cas heap ~tid:0 (i land 1023)
               ~expected:(Nvm.Heap.load heap ~tid:0 (i land 1023))
               ~desired:i));
      time_op "sync (wb+fence)" 20000 (fun i ->
          Nvm.Heap.persist heap ~tid:0 (i land 1023));
      time_op "batched sync (8 lines)" 10000 (fun i ->
          for j = 0 to 7 do
            Nvm.Heap.write_back heap ~tid:0 ((i + (j * 64)) land 1023)
          done;
          Nvm.Heap.fence heap ~tid:0);
    ]

(* ------------------------------------------------------------------ *)
(* Figure 5: update throughput vs log-based baseline across sizes.     *)

let sizes_for opts structure =
  match (structure, opts.full) with
  | I.List, false -> [ 32; 128; 1024 ]
  | I.List, true -> [ 32; 128; 4096; 65536 ]
  | _, false -> [ 128; 1024; 8192 ]
  | _, true -> [ 128; 4096; 65536 ]

let fig5 opts =
  let mix = Keygen.update_only in
  List.iter
    (fun structure ->
      let rows =
        List.concat_map
          (fun size ->
            List.map
              (fun nthreads ->
                let ratios =
                  ratio_row opts ~structure ~size ~mix ~flavors:[ I.Lc ] ~nthreads
                in
                [
                  string_of_int size;
                  string_of_int nthreads;
                  Report.f2 (List.nth ratios 0);
                ])
              opts.threads)
          (sizes_for opts structure)
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Figure 5 (%s): update throughput of log-free (link cache) \
              relative to log-based"
             (I.structure_name structure))
        ~header:[ "size"; "threads"; "x vs log" ]
        rows)
    I.all_structures

(* ------------------------------------------------------------------ *)
(* Figure 6: sensitivity to NVRAM write latency (linked list, 1024).   *)

let fig6 opts =
  let mix = Keygen.update_only in
  let base = base_write_ns opts in
  let rows =
    List.concat_map
      (fun mult ->
        List.map
          (fun nthreads ->
            let o = { opts with write_ns = base * mult } in
            let r =
              ratio_row o ~structure:I.List ~size:1024 ~mix ~flavors:[ I.Lc ]
                ~nthreads
            in
            [
              Printf.sprintf "%s (%dx)" (Report.human_ns (float_of_int (base * mult))) mult;
              string_of_int nthreads;
              Report.f2 (List.nth r 0);
            ])
          opts.threads)
      [ 1; 10; 100 ]
  in
  Report.table
    ~title:
      "Figure 6: linked list (1024 elems), log-free vs log-based across NVRAM \
       write latencies"
    ~header:[ "write latency"; "threads"; "x vs log" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 7: durable vs volatile implementation (linked list).         *)

let fig7 opts =
  let mix = Keygen.update_only in
  let sizes =
    if opts.full then [ 32; 128; 4096; 65536 ] else [ 32; 128; 1024; 4096 ]
  in
  let rows =
    List.concat_map
      (fun size ->
        List.map
          (fun nthreads ->
            let vol =
              throughput_point opts ~structure:I.List ~flavor:I.Volatile ~size
                ~nthreads ~mix
            in
            let dur =
              throughput_point opts ~structure:I.List ~flavor:I.Lc ~size ~nthreads
                ~mix
            in
            [ string_of_int size; string_of_int nthreads; Report.f2 (dur /. vol) ])
          opts.threads)
      sizes
  in
  Report.table
    ~title:
      "Figure 7: linked list, durable (link cache) throughput relative to \
       NVRAM-oblivious (volatile)"
    ~header:[ "size"; "threads"; "x vs volatile" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8: link-and-persist vs link cache, all structures, 1024.     *)

let fig8 opts =
  let mix = Keygen.update_only in
  let rows =
    List.concat_map
      (fun structure ->
        List.map
          (fun nthreads ->
            let r =
              ratio_row opts ~structure ~size:1024 ~mix ~flavors:[ I.Lp; I.Lc ]
                ~nthreads
            in
            [
              I.structure_name structure;
              string_of_int nthreads;
              Report.f2 (List.nth r 0);
              Report.f2 (List.nth r 1);
            ])
          opts.threads)
      I.all_structures
  in
  Report.table
    ~title:
      "Figure 8: throughput normalized to log-based (1024 elems, 100% updates)"
    ~header:[ "structure"; "threads"; "LP x"; "LC x" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 9: active page table hit rates and NV-epochs speedup.        *)

let fig9 opts =
  (* (a) hit rates on a skip list across sizes. *)
  let hit_rows =
    List.map
      (fun size ->
        let inst =
          I.create ~nthreads:1 ~size_hint:size ~latency:(latency opts)
            ~structure:I.Skiplist ~flavor:I.Lp ()
        in
        Keygen.prefill inst.ops ~size ~seed:opts.seed;
        Nvm.Heap.reset_stats (Lfds.Ctx.heap inst.ctx);
        let range = Keygen.range_for ~size in
        ignore
          (Run.throughput ~nthreads:1 ~duration:opts.duration
             ~step:(Run.set_workload inst.ops ~mix:Keygen.update_only ~range)
             ~seed:opts.seed ());
        let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap inst.ctx) in
        let rate h m =
          if h + m = 0 then 1.0 else float_of_int h /. float_of_int (h + m)
        in
        [
          string_of_int size;
          Printf.sprintf "%.1f%%" (100. *. rate st.apt_alloc_hits st.apt_alloc_misses);
          Printf.sprintf "%.1f%%" (100. *. rate st.apt_unlink_hits st.apt_unlink_misses);
        ])
      (sizes_for opts I.Skiplist)
  in
  Report.table
    ~title:"Figure 9a: active-page-table hit rates (skip list, 4KB pages)"
    ~header:[ "size"; "insert hit rate"; "delete hit rate" ]
    hit_rows;
  (* (b) NV-epochs vs per-operation logged memory management. *)
  let mix = Keygen.update_only in
  let rows =
    List.concat_map
      (fun structure ->
        List.map
          (fun size ->
            let point mem_mode =
              let inst =
                I.create ~nthreads:1 ~size_hint:size ~latency:(latency opts)
                  ~mem_mode ~structure ~flavor:I.Lp ()
              in
              Keygen.prefill inst.ops ~size ~seed:opts.seed;
              let range = Keygen.range_for ~size in
              (Run.throughput ~nthreads:1 ~duration:opts.duration
                 ~step:(Run.set_workload inst.ops ~mix ~range)
                 ~seed:opts.seed ())
                .throughput
            in
            let nv = point Lfds.Nv_epochs.Nv in
            let logged = point Lfds.Nv_epochs.Logged in
            [
              I.structure_name structure;
              string_of_int size;
              Report.f2 (nv /. logged);
            ])
          (sizes_for opts structure))
      I.all_structures
  in
  Report.table
    ~title:
      "Figure 9b: throughput with NV-epochs relative to logged allocation \
       (link-and-persist structures, 1 thread)"
    ~header:[ "structure"; "size"; "x vs logged-alloc" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 10: recovery time vs structure size.                         *)

let fig10 opts =
  let rows =
    List.concat_map
      (fun structure ->
        List.map
          (fun size ->
            let inst =
              I.create ~nthreads:1 ~size_hint:size ~latency:(latency opts)
                ~structure ~flavor:I.Lp ()
            in
            Keygen.prefill inst.ops ~size ~seed:opts.seed;
            (* Run a burst of updates so the crash interrupts real work. *)
            let range = Keygen.range_for ~size in
            ignore
              (Run.throughput ~nthreads:1 ~duration:(opts.duration /. 2.)
                 ~step:(Run.set_workload inst.ops ~mix:Keygen.update_only ~range)
                 ~seed:opts.seed ());
            let inst', dt, freed = I.crash_and_recover ~seed:opts.seed inst in
            [
              I.structure_name structure;
              string_of_int size;
              Report.human_ns (dt *. 1e9);
              string_of_int freed;
              string_of_int (inst'.ops.size ());
            ])
          (sizes_for opts structure))
      I.all_structures
  in
  Report.table
    ~title:
      "Figure 10: full recovery time after a crash (consistency restore + \
       active-page sweep)"
    ~header:[ "structure"; "size"; "recovery"; "leaked nodes freed"; "size after" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 11: NV-Memcached vs volatile Memcached builds.               *)

let cache_cfg opts ~nkeys ~mode =
  {
    (Lfds.Ctx.default_config ()) with
    size_words = Nvm.Cacheline.align_up ((nkeys * 64) + (1 lsl 19));
    nthreads = 4;
    mode;
    latency = latency opts;
    apt_entries = 8192;
    static_words = Nvm.Cacheline.align_up ((2 * max 4096 nkeys) + 128);
  }

let build_nv_cache opts ~nkeys =
  let cfg = cache_cfg opts ~nkeys ~mode:Lfds.Persist_mode.Link_persist in
  let ctx = Lfds.Ctx.create cfg in
  let t =
    Kvcache.Nv_memcached.create ctx ~nbuckets:(max 1024 (nkeys / 2))
      ~capacity:(2 * nkeys)
  in
  (cfg, ctx, t)

let build_clht_cache opts ~nkeys =
  let cfg = cache_cfg opts ~nkeys ~mode:Lfds.Persist_mode.Volatile in
  let ctx = Lfds.Ctx.create cfg in
  let t =
    Kvcache.Nv_memcached.create ctx ~nbuckets:(max 1024 (nkeys / 2))
      ~capacity:(2 * nkeys)
  in
  Kvcache.Nv_memcached.ops ~name:"memcached-clht" t

let fig11 opts =
  let nthreads = 4 in
  let key_ranges = if opts.full then [ 1000; 10000; 100000 ] else [ 1000; 10000 ] in
  let tp_rows =
    List.concat_map
      (fun nkeys ->
        let volatile =
          Kvcache.Memcached_volatile.ops
            (Kvcache.Memcached_volatile.create ~capacity:(2 * nkeys))
        in
        let clht = build_clht_cache opts ~nkeys in
        let _, _, nv = build_nv_cache opts ~nkeys in
        let nv_ops = Kvcache.Nv_memcached.ops nv in
        List.map
          (fun cache ->
            ignore (Kvcache.Memtier.warmup cache ~nkeys);
            let r =
              Kvcache.Memtier.run cache ~nthreads ~duration:opts.duration ~nkeys
                ~seed:opts.seed ()
            in
            [
              string_of_int nkeys;
              cache.Kvcache.Cache_intf.name;
              Report.human_ops r.throughput;
            ])
          [ volatile; clht; nv_ops ])
      key_ranges
  in
  Report.table
    ~title:
      "Figure 11 (left): memtier throughput, 1:4 set:get, 4 threads \
       (volatile 'memcached' runs on native memory, not the simulated heap; \
       the like-for-like pair is memcached-clht vs nv-memcached)"
    ~header:[ "keys"; "system"; "throughput" ]
    tp_rows;
  let rec_rows =
    List.concat_map
      (fun nkeys ->
        let volatile =
          Kvcache.Memcached_volatile.ops
            (Kvcache.Memcached_volatile.create ~capacity:(2 * nkeys))
        in
        let warm_v = Kvcache.Memtier.warmup volatile ~nkeys in
        let clht = build_clht_cache opts ~nkeys in
        let warm_c = Kvcache.Memtier.warmup clht ~nkeys in
        let cfg, ctx, nv = build_nv_cache opts ~nkeys in
        let nv_ops = Kvcache.Nv_memcached.ops nv in
        ignore (Kvcache.Memtier.warmup nv_ops ~nkeys);
        let heap = Lfds.Ctx.heap ctx in
        Nvm.Heap.crash heap ~seed:opts.seed ~eviction_probability:0.5;
        let recovered, rec_t =
          Run.time (fun () ->
              let ctx', active = Lfds.Ctx.recover heap cfg in
              Kvcache.Nv_memcached.recover ctx'
                ~nbuckets:(max 1024 (nkeys / 2))
                ~capacity:(2 * nkeys) ~active_pages:active)
        in
        [
          [
            string_of_int nkeys;
            "memcached (warm-up)";
            Report.human_ns (warm_v *. 1e9);
          ];
          [
            string_of_int nkeys;
            "memcached-clht (warm-up)";
            Report.human_ns (warm_c *. 1e9);
          ];
          [
            string_of_int nkeys;
            Printf.sprintf "nv-memcached (recovery, %d items)"
              (Kvcache.Nv_memcached.count recovered);
            Report.human_ns (rec_t *. 1e9);
          ];
        ])
      key_ranges
  in
  Report.table
    ~title:"Figure 11 (right): warm-up time vs NV-Memcached recovery time"
    ~header:[ "keys"; "system"; "time" ]
    rec_rows

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out.                  *)

let ablate opts =
  let mix = Keygen.update_only in
  (* Link cache on/off across thread counts (section 6.2 note). *)
  let rows =
    List.map
      (fun nthreads ->
        let r =
          ratio_row opts ~structure:I.Hash ~size:1024 ~mix ~flavors:[ I.Lp; I.Lc ]
            ~nthreads
        in
        [ string_of_int nthreads; Report.f2 (List.nth r 0); Report.f2 (List.nth r 1) ])
      (opts.threads @ if opts.full then [ 16 ] else [])
  in
  Report.table
    ~title:
      "Ablation: link cache vs plain link-and-persist as concurrency grows \
       (hash table)"
    ~header:[ "threads"; "LP x vs log"; "LC x vs log" ]
    rows;
  (* Active-page granularity: hit rate and recovery time vs page size. *)
  let rows =
    List.map
      (fun page_words ->
        let inst =
          I.create ~nthreads:1 ~size_hint:8192 ~latency:(latency opts) ~page_words
            ~structure:I.Skiplist ~flavor:I.Lp ()
        in
        Keygen.prefill inst.ops ~size:8192 ~seed:opts.seed;
        Nvm.Heap.reset_stats (Lfds.Ctx.heap inst.ctx);
        ignore
          (Run.throughput ~nthreads:1 ~duration:opts.duration
             ~step:
               (Run.set_workload inst.ops ~mix ~range:(Keygen.range_for ~size:8192))
             ~seed:opts.seed ());
        let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap inst.ctx) in
        let rate h m =
          if h + m = 0 then 1.0 else float_of_int h /. float_of_int (h + m)
        in
        let _, dt, _ = I.crash_and_recover ~seed:opts.seed inst in
        [
          Printf.sprintf "%d B" (page_words * 8);
          Printf.sprintf "%.1f%%" (100. *. rate st.apt_hits st.apt_misses);
          Report.human_ns (dt *. 1e9);
        ])
      [ 128; 512; 2048 ]
  in
  Report.table
    ~title:"Ablation: active-page granularity (skip list, 8K elems)"
    ~header:[ "page size"; "APT hit rate"; "recovery time" ]
    rows;
  (* WAL sync policy: eager (undo-sound) vs batched lower bound. *)
  let rows =
    List.map
      (fun (name, wal_mode) ->
        let inst =
          I.create ~nthreads:1 ~size_hint:1024 ~latency:(latency opts) ~wal_mode
            ~structure:I.Skiplist ~flavor:I.Log ()
        in
        Keygen.prefill inst.ops ~size:1024 ~seed:opts.seed;
        let tp =
          (Run.throughput ~nthreads:1 ~duration:opts.duration
             ~step:
               (Run.set_workload inst.ops ~mix ~range:(Keygen.range_for ~size:1024))
             ~seed:opts.seed ())
            .throughput
        in
        [ name; Report.human_ops tp ])
      [
        ("eager (per-entry sync)", Baseline.Wal.Eager);
        ("batched (one log sync; unsound lower bound)", Baseline.Wal.Batched);
      ]
  in
  Report.table
    ~title:"Ablation: log-based skip list under WAL sync policies"
    ~header:[ "policy"; "throughput" ]
    rows;
  (* Write-back instruction choice (section 2: why clwb). *)
  let rows =
    List.map
      (fun (name, kind) ->
        let inst =
          I.create ~nthreads:1 ~size_hint:1024 ~latency:(latency opts)
            ~structure:I.Hash ~flavor:I.Lp ()
        in
        Nvm.Heap.set_wb_instruction (Lfds.Ctx.heap inst.ctx) kind;
        Keygen.prefill inst.ops ~size:1024 ~seed:opts.seed;
        let tp =
          (Run.throughput ~nthreads:1 ~duration:opts.duration
             ~step:
               (Run.set_workload inst.ops ~mix ~range:(Keygen.range_for ~size:1024))
             ~seed:opts.seed ())
            .throughput
        in
        [ name; Report.human_ops tp ])
      [
        ("clwb (no invalidate, batched)", Nvm.Heap.Clwb);
        ("clflushopt (invalidating, batched)", Nvm.Heap.Clflushopt);
        ("clflush (invalidating, serialized)", Nvm.Heap.Clflush);
      ]
  in
  Report.table
    ~title:"Ablation: write-back instruction (hash table, link-and-persist)"
    ~header:[ "instruction"; "throughput" ]
    rows;
  (* Parallel recovery sweep (section 5.5: both strategies parallelize). *)
  let rows =
    List.map
      (fun nworkers ->
        let inst =
          I.create ~nthreads:1 ~size_hint:8192 ~latency:(latency opts)
            ~structure:I.Hash ~flavor:I.Lp ()
        in
        Keygen.prefill inst.ops ~size:8192 ~seed:opts.seed;
        Nvm.Heap.crash (Lfds.Ctx.heap inst.ctx) ~seed:opts.seed
          ~eviction_probability:0.5;
        let (ctx, active), attach_t =
          Run.time (fun () -> Lfds.Ctx.recover (Lfds.Ctx.heap inst.ctx) inst.cfg)
        in
        let t = Lfds.Durable_hash.attach ctx ~nbuckets:inst.hash_buckets in
        Lfds.Durable_hash.recover_consistency ctx t;
        let iter f =
          Lfds.Durable_hash.iter_nodes ctx t (fun n ~deleted:_ -> f n)
        in
        let freed, sweep_t =
          Run.time (fun () ->
              Lfds.Recovery.sweep_traversal_parallel ctx ~active_pages:active
                ~iter ~nworkers)
        in
        [
          string_of_int nworkers;
          Report.human_ns ((attach_t +. sweep_t) *. 1e9);
          string_of_int freed;
        ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~title:"Ablation: parallel recovery sweep (hash table, 8K elems)"
    ~header:[ "workers"; "recovery time"; "freed" ]
    rows

(* ------------------------------------------------------------------ *)
(* Flavor shootout: the five persistence flavors (volatile / lp / lc / *)
(* nvt / lf) head to head — fences and write-backs per operation plus  *)
(* throughput on read-heavy and update-only mixes, and recovery time   *)
(* vs size for the link-free rebuild against link-and-persist's sweep. *)

let shootout_flavors = [ I.Volatile; I.Lp; I.Lc; I.Nvt; I.Lf ]

(* Like [throughput_point] but returns the per-operation persistence cost
   alongside throughput and records a "flavors" JSON row; with --latency or
   --trace the measured window is flight-recorded for span attribution
   ("where did the fences go"). *)
let flavor_point opts ~structure ~flavor ~size ~nthreads ~mix ~mix_name =
  let inst =
    I.create ~nthreads ~size_hint:size ~latency:(latency opts) ~structure ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.ctx in
  Keygen.prefill inst.ops ~size ~seed:opts.seed;
  Nvm.Heap.reset_stats heap;
  let tracer =
    if opts.latency || opts.trace <> None then Some (Trace.Nvtrace.attach heap)
    else None
  in
  let range = Keygen.range_for ~size in
  let r =
    Run.throughput ~nthreads ~duration:opts.duration
      ~step:(Run.set_workload inst.ops ~mix ~range)
      ~seed:opts.seed ()
  in
  (match tracer with
  | None -> ()
  | Some tr ->
      Trace.Nvtrace.detach tr;
      report_tracer opts tr ~structure ~flavor ~size ~nthreads ~mix_name);
  let st = Nvm.Heap.aggregate_stats heap in
  let per c = float_of_int c /. float_of_int (max 1 r.Run.total_ops) in
  let fences_per_op = per st.Nvm.Pstats.fences in
  let wb_per_op = per st.Nvm.Pstats.write_backs in
  if Json_out.enabled () then
    Json_out.add ~kind:"flavors"
      Json_out.
        [
          ("structure", S (I.structure_name structure));
          ("flavor", S (I.flavor_name flavor));
          ("size", I size);
          ("threads", I nthreads);
          ("mix", S mix_name);
          ("duration", F opts.duration);
          ("write_ns", I (base_write_ns opts));
          ("seed", I opts.seed);
          ("ops_per_s", F r.Run.throughput);
          ("fences_per_op", F fences_per_op);
          ("wb_per_op", F wb_per_op);
          ("substrate", substrate_fields st);
        ];
  (r.Run.throughput, fences_per_op, wb_per_op)

let flavors_shootout opts =
  let size = 1024 in
  let mixes =
    [
      ("read-heavy (10% updates)", "read-heavy", Keygen.mixed ~update_pct:10);
      ("update-only", "update", Keygen.update_only);
    ]
  in
  List.iter
    (fun (mix_title, mix_name, mix) ->
      List.iter
        (fun nthreads ->
          let rows =
            List.concat_map
              (fun structure ->
                let points =
                  List.map
                    (fun flavor ->
                      ( flavor,
                        flavor_point opts ~structure ~flavor ~size ~nthreads ~mix
                          ~mix_name ))
                    shootout_flavors
                in
                let lp_fences =
                  match List.assoc_opt I.Lp points with
                  | Some (_, f, _) -> f
                  | None -> 0.
                in
                List.map
                  (fun (flavor, (tp, fpo, wpo)) ->
                    [
                      I.structure_name structure;
                      I.flavor_name flavor;
                      Report.human_ops tp;
                      Printf.sprintf "%.3f" fpo;
                      Printf.sprintf "%.3f" wpo;
                      (if lp_fences > 0. then
                         Printf.sprintf "%.2fx" (fpo /. lp_fences)
                       else "-");
                    ])
                  points)
              I.all_structures
          in
          Report.table
            ~title:
              (Printf.sprintf "Flavor shootout: %s, %d elems, %d thread(s)"
                 mix_title size nthreads)
            ~header:
              [ "structure"; "flavor"; "ops/s"; "fences/op"; "wb/op"; "fences vs lp" ]
            rows)
        opts.threads)
    mixes

(* Link-free recovery is a full rebuild (reachability is reconstructed from
   per-node validity words), so its cost grows with the number of survivors;
   link-and-persist only restores link consistency and sweeps active pages.
   These curves quantify the trade the fence savings buy. *)
let flavors_recovery opts =
  let sizes =
    if opts.full then [ 1024; 4096; 16384; 65536 ] else [ 256; 1024; 4096 ]
  in
  List.iter
    (fun structure ->
      let rows =
        List.concat_map
          (fun size ->
            List.map
              (fun flavor ->
                let inst =
                  I.create ~nthreads:1 ~size_hint:size ~latency:(latency opts)
                    ~structure ~flavor ()
                in
                Keygen.prefill inst.ops ~size ~seed:opts.seed;
                let range = Keygen.range_for ~size in
                ignore
                  (Run.throughput ~nthreads:1 ~duration:(opts.duration /. 2.)
                     ~step:(Run.set_workload inst.ops ~mix:Keygen.update_only ~range)
                     ~seed:opts.seed ());
                let inst', dt, freed = I.crash_and_recover ~seed:opts.seed inst in
                if Json_out.enabled () then
                  Json_out.add ~kind:"recovery"
                    Json_out.
                      [
                        ("structure", S (I.structure_name structure));
                        ("flavor", S (I.flavor_name flavor));
                        ("size", I size);
                        ("write_ns", I (base_write_ns opts));
                        ("recovery_s", F dt);
                        ("freed", I freed);
                        ("size_after", I (inst'.ops.size ()));
                      ];
                [
                  string_of_int size;
                  I.flavor_name flavor;
                  Report.human_ns (dt *. 1e9);
                  string_of_int freed;
                  string_of_int (inst'.ops.size ());
                ])
              [ I.Lp; I.Lf ])
          sizes
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Recovery time vs size (%s): link-and-persist sweep vs link-free \
              rebuild"
             (I.structure_name structure))
        ~header:[ "size"; "flavor"; "recovery"; "freed"; "size after" ]
        rows)
    [ I.Hash; I.Skiplist ]

let flavors_exp opts =
  flavors_shootout opts;
  flavors_recovery opts

(* ------------------------------------------------------------------ *)
(* Queue/deque family: producer-consumer throughput, per-op fence      *)
(* budget across the five flavors, and crash-recovery cost.            *)

module QI = Harness.Queue_instance

let queue_flavors = [ I.Volatile; I.Lp; I.Lc; I.Nvt; I.Lf ]

(* The deque's owner keeps the standing population under this bound so the
   hard 56-item buffer class is never exhausted mid-run; the MPMC producer
   in the mpsc mix uses a looser bound for the same reason (a lone producer
   would otherwise outrun consumption and the heap). *)
let deque_soft_cap = 40
let mpmc_soft_cap = 512

(* One workload step per (structure, mix). Values encode the producer and a
   per-thread counter, as in the crash drill. *)
let queue_step structure inst counters ~mix_name =
  let fresh tid =
    let c = counters.(tid) + 1 in
    counters.(tid) <- c;
    ((tid + 1) * 1_000_000) + c
  in
  match (structure, mix_name) with
  | QI.Mpmc, "mpsc" ->
      (* Thread 0 produces (bounded), everyone else consumes. *)
      fun ~tid ~rng:_ ->
        if tid = 0 && QI.size inst < mpmc_soft_cap then
          QI.put inst ~tid ~value:(fresh tid)
        else ignore (QI.steal inst ~tid)
  | QI.Mpmc, _ ->
      (* enq-deq-50-50: every thread flips a coin. *)
      fun ~tid ~rng ->
        if Xoshiro.below rng 2 = 0 then QI.put inst ~tid ~value:(fresh tid)
        else ignore (QI.steal inst ~tid)
  | QI.Deque, "steal-heavy" ->
      (* The owner only feeds; every other thread steals. *)
      fun ~tid ~rng:_ ->
        if tid = 0 then
          if QI.size inst < deque_soft_cap then
            QI.put inst ~tid ~value:(fresh tid)
          else ignore (QI.take inst ~tid)
        else ignore (QI.steal inst ~tid)
  | QI.Deque, _ ->
      (* owner-mixed: the owner interleaves push and pop 2:1. *)
      fun ~tid ~rng ->
        if tid = 0 then begin
          if Xoshiro.below rng 3 < 2 && QI.size inst < deque_soft_cap then
            QI.put inst ~tid ~value:(fresh tid)
          else ignore (QI.take inst ~tid)
        end
        else ignore (QI.steal inst ~tid)

let queue_mixes = function
  | QI.Mpmc -> [ "enq-deq-50-50"; "mpsc" ]
  | QI.Deque -> [ "owner-mixed"; "steal-heavy" ]

(* Standing population at measurement start. *)
let queue_prefill = function QI.Mpmc -> 256 | QI.Deque -> 24

let queue_point opts ~structure ~flavor ~nthreads ~mix_name =
  let inst =
    QI.create ~nthreads ~size_hint:1024 ~latency:(latency opts) ~structure
      ~flavor ()
  in
  let heap = Lfds.Ctx.heap inst.QI.ctx in
  for v = 1 to queue_prefill structure do
    QI.put inst ~tid:0 ~value:v
  done;
  Nvm.Heap.reset_stats heap;
  let counters = Array.make (max 1 nthreads) 0 in
  let r =
    Run.throughput ~nthreads ~duration:opts.duration
      ~step:(queue_step structure inst counters ~mix_name)
      ~seed:opts.seed ()
  in
  let st = Nvm.Heap.aggregate_stats heap in
  let per c = float_of_int c /. float_of_int (max 1 r.Run.total_ops) in
  let fences_per_op = per st.Nvm.Pstats.fences in
  let wb_per_op = per st.Nvm.Pstats.write_backs in
  if Json_out.enabled () then
    Json_out.add ~kind:"queues"
      Json_out.
        [
          ("structure", S (QI.structure_name structure));
          ("flavor", S (I.flavor_name flavor));
          ("threads", I nthreads);
          ("mix", S mix_name);
          ("duration", F opts.duration);
          ("write_ns", I (base_write_ns opts));
          ("seed", I opts.seed);
          ("ops_per_s", F r.Run.throughput);
          ("fences_per_op", F fences_per_op);
          ("wb_per_op", F wb_per_op);
          ("substrate", substrate_fields st);
        ];
  (r.Run.throughput, fences_per_op, wb_per_op)

let queues_shootout opts =
  List.iter
    (fun structure ->
      List.iter
        (fun mix_name ->
          List.iter
            (fun nthreads ->
              (* The deque needs a thief for the steal-heavy mix to consume
                 anything; skip single-thread points there. *)
              if not (structure = QI.Deque && mix_name = "steal-heavy" && nthreads < 2)
              then begin
                let points =
                  List.map
                    (fun flavor ->
                      ( flavor,
                        queue_point opts ~structure ~flavor ~nthreads ~mix_name ))
                    queue_flavors
                in
                let lp_fences =
                  match List.assoc_opt I.Lp points with
                  | Some (_, f, _) -> f
                  | None -> 0.
                in
                Report.table
                  ~title:
                    (Printf.sprintf "Queue shootout: %s, %s, %d thread(s)"
                       (QI.structure_name structure) mix_name nthreads)
                  ~header:
                    [ "flavor"; "ops/s"; "fences/op"; "wb/op"; "fences vs lp" ]
                  (List.map
                     (fun (flavor, (tp, fpo, wpo)) ->
                       [
                         I.flavor_name flavor;
                         Report.human_ops tp;
                         Printf.sprintf "%.3f" fpo;
                         Printf.sprintf "%.3f" wpo;
                         (if lp_fences > 0. then
                            Printf.sprintf "%.2fx" (fpo /. lp_fences)
                          else "-");
                       ])
                     points)
              end)
            opts.threads)
        (queue_mixes structure))
    QI.all_structures

(* Crash + recovery cost of a standing population: the stamp-scan
   normalization (lp/nvt) against the link-free rebuild. *)
let queues_recovery opts =
  let rows =
    List.concat_map
      (fun structure ->
        let items =
          match structure with
          | QI.Mpmc -> if opts.full then 16384 else 2048
          | QI.Deque -> 56
        in
        List.map
          (fun flavor ->
            let inst =
              QI.create ~nthreads:1 ~size_hint:(max 1024 items)
                ~latency:(latency opts) ~structure ~flavor ()
            in
            for v = 1 to items do
              QI.put inst ~tid:0 ~value:v
            done;
            let inst', dt, freed = QI.crash_and_recover ~seed:opts.seed inst in
            let size_after = QI.size inst' in
            if Json_out.enabled () then
              Json_out.add ~kind:"queue-recovery"
                Json_out.
                  [
                    ("structure", S (QI.structure_name structure));
                    ("flavor", S (I.flavor_name flavor));
                    ("items", I items);
                    ("write_ns", I (base_write_ns opts));
                    ("recovery_s", F dt);
                    ("freed", I freed);
                    ("size_after", I size_after);
                  ];
            [
              QI.structure_name structure;
              I.flavor_name flavor;
              string_of_int items;
              Report.human_ns (dt *. 1e9);
              string_of_int freed;
              string_of_int size_after;
            ])
          [ I.Lp; I.Nvt; I.Lf ])
      QI.all_structures
  in
  Report.table
    ~title:"Queue recovery: stamp-scan normalization vs link-free rebuild"
    ~header:[ "structure"; "flavor"; "items"; "recovery"; "freed"; "size after" ]
    rows

(* Steal latency on the volatile scheduler deque — the run-queue twin of
   the durable deque benched above (same owner/steal discipline, no persist
   points). One owner domain works the bottom under a population bound; one
   thief times {e every} steal attempt with the monotonic clock, failed
   races included — the failures are the cost an idle NVServe domain pays
   per empty raid. The record rides the "queues" kind with [threads = 2]
   and a volatile flavor, which keeps it outside the CI fences baseline
   (that gate reads durable single-thread rows only). *)
let steal_latency_point opts =
  let module D = Server.Scheduler.Ws_deque in
  let dq : int D.t = D.create () in
  let stop = Atomic.make false in
  let owner =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          if D.size dq < deque_soft_cap then begin
            incr n;
            D.push dq !n
          end
          else ignore (D.pop dq)
        done)
  in
  let hist = Histogram.create () in
  let steals = ref 0 and fails = ref 0 in
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. Float.max 0.2 opts.duration in
  while Unix.gettimeofday () < t_end do
    (* Check the wall clock once per block, not per attempt. *)
    for _ = 1 to 256 do
      let a = Server.Sys_poll.monotonic_ns () in
      let got = D.steal dq in
      let b = Server.Sys_poll.monotonic_ns () in
      Histogram.record hist ~ns:(float_of_int (b - a));
      match got with Some _ -> incr steals | None -> incr fails
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  Domain.join owner;
  let attempts = !steals + !fails in
  let p q = Histogram.percentile hist q in
  if Json_out.enabled () then
    Json_out.add ~kind:"queues"
      Json_out.
        [
          ("structure", S "sched-deque");
          ("flavor", S "volatile");
          ("threads", I 2);
          ("mix", S "steal-latency");
          ("duration", F opts.duration);
          ("write_ns", I (base_write_ns opts));
          ("seed", I opts.seed);
          ("ops_per_s", F (float_of_int !steals /. Float.max 1e-9 elapsed));
          ("attempts_per_s", F (float_of_int attempts /. Float.max 1e-9 elapsed));
          ("steals", I !steals);
          ("steal_fails", I !fails);
          ("steal_p50_ns", F (p 50.));
          ("steal_p99_ns", F (p 99.));
          ("steal_p999_ns", F (p 99.9));
          ("steal_max_ns", F (Histogram.max_ns hist));
        ];
  pr
    "steal latency (sched-deque, 1 owner + 1 thief): %d steals, %d failed \
     races  p50=%s p99=%s p99.9=%s max=%s\n"
    !steals !fails
    (Report.human_ns (p 50.))
    (Report.human_ns (p 99.))
    (Report.human_ns (p 99.9))
    (Report.human_ns (Histogram.max_ns hist))

let queues_exp opts =
  queues_shootout opts;
  steal_latency_point opts;
  queues_recovery opts

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the primitives.                        *)

let micro () =
  let open Bechamel in
  let heap =
    Nvm.Heap.create ~latency:(Nvm.Latency_model.default ()) ~size_words:65536 ()
  in
  let inst = I.create ~nthreads:1 ~size_hint:1024 ~structure:I.List ~flavor:I.Lp () in
  Keygen.prefill inst.ops ~size:256 ~seed:7;
  let k = ref 1_000_000 in
  let tests =
    [
      Test.make ~name:"heap-load"
        (Staged.stage (fun () -> ignore (Nvm.Heap.load heap ~tid:0 128)));
      Test.make ~name:"heap-store"
        (Staged.stage (fun () -> Nvm.Heap.store heap ~tid:0 128 42));
      Test.make ~name:"heap-sync"
        (Staged.stage (fun () -> Nvm.Heap.persist heap ~tid:0 128));
      Test.make ~name:"list-insert+remove-LP"
        (Staged.stage (fun () ->
             incr k;
             ignore (inst.ops.insert ~tid:0 ~key:!k ~value:1);
             ignore (inst.ops.remove ~tid:0 ~key:!k)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"primitives" tests) in
  pr "\n== Bechamel micro-benchmarks (ns/op, OLS estimate) ==\n";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> pr "%-32s %12.1f ns\n" name est
      | Some _ | None -> pr "%-32s (no estimate)\n" name)
    results;
  flush stdout

(* ------------------------------------------------------------------ *)
(* Smoke probe: the fig5 hash-table point, small enough to run after   *)
(* every test pass (dune alias bench-smoke) and to anchor the repo's   *)
(* BENCH_*.json trajectory across PRs.                                 *)

(* NVServe end-to-end comparison: the link-and-persist store served over
   real loopback TCP at the run's injected NVRAM write latency, driven by
   a set-only pipelined hot-key load (overwrite sets are link-and-persist's
   most fence-intensive path) twice — group commit at the server default
   [max_batch] vs forced off ([max_batch = 1], eager per-op fences). Each
   arm is best-of-7 (fresh server per trial): a 1-core CI container's
   scheduling noise swamps a single trial, and the best trial of each arm
   is the one that measures the server rather than the neighbours. The
   arms are interleaved as eager/batched pairs with a [Gc.compact] between
   trials, so client-side GC debt accumulated by earlier trials (the
   loadgen runs in this process) cannot systematically slow whichever arm
   happens to run later. The pair anchors the repo's fences-per-request
   and throughput trajectory across PRs. *)
let smoke_loadgen opts =
  let nworkers = 1 and nconns = 1 and nkeys = 512 and pipeline = 64 in
  let mix = { Keygen.insert_pct = 100; remove_pct = 0 } in
  let trial ~max_batch =
    let srv =
      Server.Nvserve.start
        {
          (Server.Nvserve.default_config ()) with
          Server.Nvserve.nworkers;
          nbuckets = 2048;
          capacity = 20_000;
          latency = latency opts;
          max_batch;
        }
    in
    let heap = Lfds.Ctx.heap (Server.Nvserve.ctx srv) in
    (* Count from the first request, not store construction. *)
    Nvm.Heap.reset_stats heap;
    let r =
      Server.Loadgen.run
        {
          (Server.Loadgen.default_config ~port:(Server.Nvserve.port srv)) with
          Server.Loadgen.nconns = nconns;
          duration = Float.max 1.0 opts.duration;
          nkeys;
          mix;
          pipeline;
          seed = opts.seed;
        }
    in
    (* Substrate counters must be read before [stop]: graceful shutdown's
       persist-everything pass would add its own fences. *)
    let st = Nvm.Heap.aggregate_stats heap in
    Server.Nvserve.stop srv;
    let depth = Server.Nvserve.batch_depth_hist srv in
    let fences_per_req =
      float_of_int st.Nvm.Pstats.fences
      /. float_of_int (max 1 r.Server.Loadgen.ops)
    in
    (r, st, depth, fences_per_req)
  in
  let report ~max_batch (r, st, depth, fences_per_req) =
    let p q = Histogram.percentile r.Server.Loadgen.hist q in
    let d q = Histogram.percentile depth q in
    let infl q = Histogram.percentile r.Server.Loadgen.inflight q in
    Json_out.add ~kind:"loadgen"
      Json_out.
        [
          ("mode", S (Lfds.Persist_mode.to_string Lfds.Persist_mode.Link_persist));
          ("workers", I nworkers);
          ("conns", I nconns);
          ("pipeline", I pipeline);
          ("keys", I nkeys);
          ("write_ns", I (base_write_ns opts));
          ("max_batch", I max_batch);
          ("ops", I r.Server.Loadgen.ops);
          ("ops_per_s", F r.Server.Loadgen.ops_per_s);
          ("errors", I r.Server.Loadgen.errors);
          ("dead_conns", I r.Server.Loadgen.dead_conns);
          ("p50_ns", F (p 50.));
          ("p99_ns", F (p 99.));
          ("fences", I st.Nvm.Pstats.fences);
          ("fences_per_req", F fences_per_req);
          ("group_commits", I st.Nvm.Pstats.group_commits);
          ("group_ops", I st.Nvm.Pstats.group_ops);
          ("ops_per_commit", F (Nvm.Pstats.ops_per_commit st));
          ("deferred_links", I st.Nvm.Pstats.deferred_links);
          ("batch_p50", F (d 50.));
          ("batch_p99", F (d 99.));
          ("batch_mean", F (Histogram.mean depth));
          ("inflight_p50", F (infl 50.));
          ("inflight_p99", F (infl 99.));
          ("inflight_mean", F (Histogram.mean r.Server.Loadgen.inflight));
          ("substrate", substrate_fields st);
        ];
    pr
      "smoke: nvserve loadgen max_batch=%-3d %s  p50=%s p99=%s  \
       %.3f fences/req  batch p50=%.0f mean=%.1f  errors=%d\n"
      max_batch
      (Report.human_ops r.Server.Loadgen.ops_per_s)
      (Report.human_ns (p 50.)) (Report.human_ns (p 99.))
      fences_per_req (d 50.) (Histogram.mean depth)
      r.Server.Loadgen.errors;
    (r.Server.Loadgen.ops_per_s, fences_per_req)
  in
  let batched_mb = (Server.Nvserve.default_config ()).Server.Nvserve.max_batch in
  let better a b =
    let ra, _, _, _ = a and rb, _, _, _ = b in
    if rb.Server.Loadgen.ops_per_s > ra.Server.Loadgen.ops_per_s then b else a
  in
  let run_pair () =
    Gc.compact ();
    let e = trial ~max_batch:1 in
    Gc.compact ();
    let b = trial ~max_batch:batched_mb in
    (e, b)
  in
  let e0, b0 = run_pair () in
  let best_eager = ref e0 and best_batched = ref b0 in
  for _ = 2 to 7 do
    let e, b = run_pair () in
    best_eager := better !best_eager e;
    best_batched := better !best_batched b
  done;
  let eager_tp, eager_fpr = report ~max_batch:1 !best_eager in
  let batched_tp, batched_fpr = report ~max_batch:batched_mb !best_batched in
  pr
    "smoke: group commit vs eager  throughput %.2fx  fences/req %.2fx lower\n"
    (batched_tp /. Float.max 1. eager_tp)
    (eager_fpr /. Float.max 1e-9 batched_fpr)

(* Telemetry-plane overhead: the smoke loadgen point (link-and-persist,
   set-only hot-key pipeline, server-default group commit) with the request
   sampler off — the default-path cost of the always-on counters — vs
   sampling 1-in-100 and sampling every request. The headline is the
   sampler-off arm staying within bench noise of the plain server (CI gates
   the off/sampled ratio loosely; the BENCH_*.json trajectory carries the
   cross-PR claim); the sampled arms bound what stage attribution costs
   when someone turns it on. Arms are interleaved best-of-5 with a
   [Gc.compact] between trials, for the same reasons as the smoke pair. *)
let telemetry_bench opts =
  let nworkers = 1 and nconns = 1 and nkeys = 512 and pipeline = 64 in
  let mix = { Keygen.insert_pct = 100; remove_pct = 0 } in
  let trial ~sample_every =
    let srv =
      Server.Nvserve.start
        {
          (Server.Nvserve.default_config ()) with
          Server.Nvserve.nworkers;
          nbuckets = 2048;
          capacity = 20_000;
          latency = latency opts;
          sample_every;
        }
    in
    let heap = Lfds.Ctx.heap (Server.Nvserve.ctx srv) in
    Nvm.Heap.reset_stats heap;
    let r =
      Server.Loadgen.run
        {
          (Server.Loadgen.default_config ~port:(Server.Nvserve.port srv)) with
          Server.Loadgen.nconns = nconns;
          duration = Float.max 1.0 opts.duration;
          nkeys;
          mix;
          pipeline;
          seed = opts.seed;
        }
    in
    let tel = Server.Nvserve.telemetry srv in
    let sampled = Server.Telemetry.counter tel Server.Telemetry.c_sampled in
    Server.Nvserve.stop srv;
    (r, sampled)
  in
  let arms = [ ("off", 0); ("1-in-100", 100); ("every-req", 1) ] in
  let run_round () =
    List.map
      (fun (name, se) ->
        Gc.compact ();
        (name, se, trial ~sample_every:se))
      arms
  in
  let best = ref (run_round ()) in
  for _ = 2 to 5 do
    let round = run_round () in
    best :=
      List.map2
        (fun (n, se, (r0, s0)) (_, _, (r1, s1)) ->
          if r1.Server.Loadgen.ops_per_s > r0.Server.Loadgen.ops_per_s then
            (n, se, (r1, s1))
          else (n, se, (r0, s0)))
        !best round
  done;
  let off_tp = ref 0. in
  List.iter
    (fun (name, se, (r, sampled)) ->
      if se = 0 then off_tp := r.Server.Loadgen.ops_per_s;
      let p q = Histogram.percentile r.Server.Loadgen.hist q in
      Json_out.add ~kind:"telemetry"
        Json_out.
          [
            ("arm", S name);
            ("sample_every", I se);
            ("workers", I nworkers);
            ("conns", I nconns);
            ("pipeline", I pipeline);
            ("keys", I nkeys);
            ("write_ns", I (base_write_ns opts));
            ("ops", I r.Server.Loadgen.ops);
            ("ops_per_s", F r.Server.Loadgen.ops_per_s);
            ("sampled_requests", I sampled);
            ("p50_ns", F (p 50.));
            ("p99_ns", F (p 99.));
            ("errors", I r.Server.Loadgen.errors);
          ];
      pr
        "telemetry %-9s %s  p50=%s p99=%s  sampled=%-8d errors=%d%s\n"
        name
        (Report.human_ops r.Server.Loadgen.ops_per_s)
        (Report.human_ns (p 50.)) (Report.human_ns (p 99.))
        sampled r.Server.Loadgen.errors
        (if se = 0 || !off_tp <= 0. then ""
         else
           Printf.sprintf "  (%.2fx vs off)"
             (r.Server.Loadgen.ops_per_s /. !off_tp)))
    !best

(* ------------------------------------------------------------------ *)
(* Connection scaling: the C10K track. How does throughput over a hot   *)
(* subset hold up as the wall of open-but-idle connections grows from   *)
(* 100 to 10 000?                                                       *)

(* The server runs in a CHILD process (this binary re-executed with the
   hidden [serve-child] command): at the 10k point the server and client
   each hold ~10k fds, and a single process would blow through the
   container's immovable 20k RLIMIT_NOFILE. The child prints its bound port
   on stdout and serves until its stdin closes; fences and scheduler
   counters come back over the wire via [stats nvlf] scrapes diffed around
   the load window. *)

let conns_child_main workers runtime max_batch write_ns =
  let runtime =
    match Server.Nvserve.runtime_of_string runtime with
    | Some r -> r
    | None ->
        prerr_endline ("serve-child: unknown runtime " ^ runtime);
        exit 2
  in
  let lat = Nvm.Latency_model.default () in
  if write_ns > 0 then lat.nvram_write_ns <- write_ns;
  let srv =
    Server.Nvserve.start
      {
        (Server.Nvserve.default_config ()) with
        Server.Nvserve.nworkers = workers;
        nbuckets = 8192;
        capacity = 100_000;
        idle_timeout = 0. (* the idle wall must stay up *);
        latency = lat;
        max_batch;
        runtime;
      }
  in
  Printf.printf "PORT %d\n%!" (Server.Nvserve.port srv);
  (try ignore (input_line stdin) with End_of_file -> ());
  Server.Nvserve.kill srv

type child = {
  ch_pid : int;
  ch_stdin : Unix.file_descr;  (** closing it stops the child *)
  ch_out : in_channel;
  ch_port : int;
}

let spawn_server_child ~runtime ~workers ~max_batch ~write_ns =
  let exe = Sys.executable_name in
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      [|
        exe; "serve-child";
        "--workers"; string_of_int workers;
        "--runtime"; runtime;
        "--max-batch"; string_of_int max_batch;
        "--write-ns"; string_of_int write_ns;
      |]
      in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  let ch_out = Unix.in_channel_of_descr out_r in
  let line = input_line ch_out in
  let ch_port = Scanf.sscanf line "PORT %d" Fun.id in
  { ch_pid = pid; ch_stdin = in_w; ch_out; ch_port }

let stop_server_child ch =
  (try Unix.close ch.ch_stdin with Unix.Unix_error _ -> ());
  (try close_in ch.ch_out with Sys_error _ -> ());
  ignore (Unix.waitpid [] ch.ch_pid)

(* One [stats nvlf] scrape over a throwaway connection. *)
let scrape_nvlf ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let req = "stats nvlf\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let ends_with s suf =
        let ls = String.length s and lu = String.length suf in
        ls >= lu && String.sub s (ls - lu) lu = suf
      in
      while not (ends_with (Buffer.contents buf) "END\r\n") do
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "conns: stats scrape: connection closed";
        Buffer.add_subbytes buf chunk 0 n
      done;
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | "STAT" :: k :: rest -> Some (k, String.concat " " rest)
          | _ -> None)
        (String.split_on_char '\n' (Buffer.contents buf)))

let conns_workers = 2
let conns_hot = 100
let conns_drivers = 8

let conns_point opts ~runtime ~conns =
  let max_batch = (Server.Nvserve.default_config ()).Server.Nvserve.max_batch in
  let ch =
    spawn_server_child ~runtime ~workers:conns_workers ~max_batch
      ~write_ns:(base_write_ns opts)
  in
  Fun.protect
    ~finally:(fun () -> stop_server_child ch)
    (fun () ->
      let before = scrape_nvlf ~port:ch.ch_port in
      let r =
        Server.Loadgen.run
          {
            (Server.Loadgen.default_config ~port:ch.ch_port) with
            Server.Loadgen.nconns = conns_drivers;
            duration = Float.max 1.0 opts.duration;
            nkeys = 4096;
            pipeline = 8;
            seed = opts.seed;
            open_conns = conns;
            hot = min conns_hot conns;
          }
      in
      let after = scrape_nvlf ~port:ch.ch_port in
      let diff key =
        let get kvs = int_of_string (List.assoc key kvs) in
        get after - get before
      in
      let fences = diff "fences" in
      let steals = diff "sched_steals" in
      let steal_fails = diff "sched_steal_fails" in
      let migrations = diff "sched_migrations" in
      let fences_per_req = float_of_int fences /. float_of_int (max 1 r.Server.Loadgen.ops) in
      let steals_per_s = float_of_int steals /. Float.max 1e-9 r.Server.Loadgen.elapsed in
      let p q = Histogram.percentile r.Server.Loadgen.hist q in
      if Json_out.enabled () then
        Json_out.add ~kind:"conns"
          Json_out.
            [
              ("runtime", S runtime);
              ("conns", I conns);
              ("hot", I (min conns_hot conns));
              ("drivers", I conns_drivers);
              ("workers", I conns_workers);
              ("pipeline", I 8);
              ("max_batch", I max_batch);
              ("write_ns", I (base_write_ns opts));
              ("duration", F (Float.max 1.0 opts.duration));
              ("seed", I opts.seed);
              ("ops", I r.Server.Loadgen.ops);
              ("ops_per_s", F r.Server.Loadgen.ops_per_s);
              ("p50_ns", F (p 50.));
              ("p99_ns", F (p 99.));
              ("p999_ns", F (p 99.9));
              ("errors", I r.Server.Loadgen.errors);
              ("dead_conns", I r.Server.Loadgen.dead_conns);
              ("open_failures", I r.Server.Loadgen.open_failures);
              ("open_s", F r.Server.Loadgen.open_s);
              ("fences", I fences);
              ("fences_per_req", F fences_per_req);
              ("sched_steals", I steals);
              ("sched_steal_fails", I steal_fails);
              ("sched_migrations", I migrations);
              ("steals_per_s", F steals_per_s);
            ];
      ( r.Server.Loadgen.ops_per_s,
        p 99.,
        fences_per_req,
        steals_per_s,
        r.Server.Loadgen.errors + r.Server.Loadgen.open_failures
        + r.Server.Loadgen.dead_conns ))

(* The select runtime refuses fds at or past its FD_SETSIZE guard, so its
   arm stops where the guard starts — which is the point of the exercise. *)
let conns_exp opts =
  let sched_points =
    if opts.full then [ 100; 1000; 3000; 10_000 ] else [ 100; 1000; 10_000 ]
  in
  let select_points = [ 100; 800 ] in
  let rows = ref [] in
  let run_arm runtime points =
    List.iter
      (fun conns ->
        let tp, p99, fpr, sps, bad = conns_point opts ~runtime ~conns in
        pr
          "conns %-6s %6d open / %3d hot: %s  p99=%s  %.3f fences/req  \
           %.0f steals/s%s\n%!"
          runtime conns (min conns_hot conns) (Report.human_ops tp)
          (Report.human_ns p99) fpr sps
          (if bad > 0 then Printf.sprintf "  [%d errors/failures]" bad else "");
        rows :=
          [
            runtime;
            string_of_int conns;
            Report.human_ops tp;
            Report.human_ns p99;
            Printf.sprintf "%.3f" fpr;
            Printf.sprintf "%.0f" sps;
            string_of_int bad;
          ]
          :: !rows)
      points
  in
  run_arm "select" select_points;
  run_arm "sched" sched_points;
  Report.table
    ~title:
      (Printf.sprintf
         "Connection scaling: %d-hot throughput vs open connections (%d \
          workers)"
         conns_hot conns_workers)
    ~header:[ "runtime"; "conns"; "ops/s"; "p99"; "fences/req"; "steals/s"; "errors" ]
    (List.rev !rows)

(* Checker cost: one fixed workload (hash/lp, the fig5 smoke point) with no
   observer, NVRace, NVSan, and both attached. The headline number is the
   checkers-off point staying within noise of the ordinary throughput
   path — an unobserved heap must not pay for the checkers' existence;
   the slowdown factors of the attached runs are informational. *)
let checkers opts =
  let mix = Keygen.update_only in
  let size = 1024 in
  let structure = I.Hash and flavor = I.Lp in
  let point checker =
    let inst =
      I.create ~nthreads:1 ~size_hint:size ~latency:(latency opts) ~structure
        ~flavor ()
    in
    let heap = Lfds.Ctx.heap inst.ctx in
    let root_limit = Lfds.Ctx.static_limit inst.ctx in
    (* Attach before prefill so allocation tracking sees every node. *)
    let det =
      if checker = "nvrace" || checker = "nvsan+nvrace" then
        Some
          (Sanitizer.Nvrace.attach
             ~config:{ (Sanitizer.Nvrace.default_config ()) with root_limit }
             heap)
      else None
    in
    let san =
      if checker = "nvsan" || checker = "nvsan+nvrace" then
        Some
          (Sanitizer.Nvsan.attach
             ~config:
               {
                 (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor))
                 with
                 root_limit;
               }
             heap)
      else None
    in
    Keygen.prefill inst.ops ~size ~seed:opts.seed;
    Nvm.Heap.reset_stats heap;
    let r =
      Run.throughput ~nthreads:1 ~duration:opts.duration
        ~step:(Run.set_workload inst.ops ~mix ~range:(Keygen.range_for ~size))
        ~seed:opts.seed ()
    in
    Option.iter Sanitizer.Nvsan.detach san;
    Option.iter Sanitizer.Nvrace.detach det;
    Json_out.add ~kind:"checkers"
      Json_out.
        [
          ("structure", S (I.structure_name structure));
          ("flavor", S (I.flavor_name flavor));
          ("checker", S checker);
          ("size", I size);
          ("threads", I 1);
          ("duration", F opts.duration);
          ("write_ns", I (base_write_ns opts));
          ("seed", I opts.seed);
          ("ops_per_s", F r.throughput);
        ];
    r.throughput
  in
  let off = point "off" in
  pr "checkers off: %s\n%!" (Report.human_ops off);
  List.iter
    (fun c ->
      let tp = point c in
      pr "checkers %s: %s (%.2fx slowdown)\n%!" c (Report.human_ops tp)
        (off /. tp))
    [ "nvrace"; "nvsan"; "nvsan+nvrace" ]

let smoke opts =
  let mix = Keygen.update_only in
  let size = 1024 in
  List.iter
    (fun nthreads ->
      let base =
        throughput_point opts ~structure:I.Hash ~flavor:I.Log ~size ~nthreads ~mix
      in
      let lc =
        throughput_point opts ~structure:I.Hash ~flavor:I.Lc ~size ~nthreads ~mix
      in
      Json_out.add ~kind:"ratio"
        Json_out.
          [
            ("structure", S (I.structure_name I.Hash));
            ("flavor", S (I.flavor_name I.Lc));
            ("vs", S (I.flavor_name I.Log));
            ("size", I size);
            ("threads", I nthreads);
            ("write_ns", I (base_write_ns opts));
            ("ratio", F (lc /. base));
            ("ops_per_s", F lc);
            ("base_ops_per_s", F base);
          ];
      pr "smoke: hash size=%d threads=%d write_ns=%d  log=%s  lc=%s  lc/log=%.2fx\n"
        size nthreads (base_write_ns opts) (Report.human_ops base)
        (Report.human_ops lc) (lc /. base))
    opts.threads;
  smoke_loadgen opts

(* ------------------------------------------------------------------ *)
(* Command line.                                                       *)

let run_all opts =
  let sect name f =
    Json_out.set_experiment name;
    f opts
  in
  sect "table1" table1;
  sect "fig5" fig5;
  sect "fig6" fig6;
  sect "fig7" fig7;
  sect "fig8" fig8;
  sect "fig9" fig9;
  sect "fig10" fig10;
  sect "fig11" fig11;
  sect "ablate" ablate;
  sect "flavors" flavors_exp;
  sect "queues" queues_exp;
  micro ()

open Cmdliner

let opts_term =
  let duration =
    Arg.(value & opt float 0.15 & info [ "duration" ] ~doc:"Seconds per point.")
  in
  let threads =
    Arg.(value & opt (list int) [ 1; 8 ] & info [ "threads" ] ~doc:"Thread counts.")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale sizes.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let write_ns =
    Arg.(
      value & opt int 0
      & info [ "write-ns" ]
          ~doc:"NVRAM write latency (ns); 0 = calibrate to the simulator.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write machine-readable results (schema nvlf-bench/2) to $(docv).")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Attach NVSan to every throughput point (Log baseline excluded) \
             and report violations; for measuring sanitizer overhead.")
  in
  let latency_flag =
    Arg.(
      value & flag
      & info [ "latency" ]
          ~doc:
            "Flight-record every throughput point with NVTrace and report \
             per-operation latency percentiles (p50/p99/p99.9) and \
             persistence-cost attribution.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the retained spans of every throughput point as Chrome \
             trace-event JSON to $(docv) (open in chrome://tracing or \
             Perfetto); implies span recording like $(b,--latency).")
  in
  let make duration threads full seed write_ns json sanitize latency trace =
    { duration; threads; full; seed; write_ns; json; sanitize; latency; trace }
  in
  Term.(
    const make $ duration $ threads $ full $ seed $ write_ns $ json $ sanitize
    $ latency_flag $ trace)

let with_json name f opts =
  (match opts.json with Some p -> Json_out.set_path p | None -> ());
  Json_out.set_experiment name;
  f opts;
  Json_out.write ();
  write_trace opts

let cmd name doc f =
  let wrapped = with_json name f in
  Cmd.v (Cmd.info name ~doc) Term.(const wrapped $ opts_term)

let () =
  let default = Term.(const (with_json "all" run_all) $ opts_term) in
  let info =
    Cmd.info "nvlf-bench" ~doc:"Log-free durable data structures: paper experiments"
  in
  let cmds =
    [
      cmd "table1" "Latency model and primitive costs" table1;
      cmd "fig5" "Update throughput vs log-based, across sizes" fig5;
      cmd "fig6" "Sensitivity to NVRAM write latency" fig6;
      cmd "fig7" "Durable vs volatile throughput" fig7;
      cmd "fig8" "Link-and-persist vs link cache" fig8;
      cmd "fig9" "Active page table hit rates and NV-epochs speedup" fig9;
      cmd "fig10" "Recovery times" fig10;
      cmd "fig11" "NV-Memcached throughput and recovery" fig11;
      cmd "ablate" "Design-choice ablations" ablate;
      cmd "flavors"
        "Five-way persistence-flavor shootout: fences/op, throughput, recovery"
        flavors_exp;
      cmd "queues"
        "Queue/deque producer-consumer track: mixes, fences/op, recovery"
        queues_exp;
      cmd "conns"
        "Connection scaling (C10K): hot-subset throughput vs open connections, \
         sched vs select runtime"
        conns_exp;
      (let workers =
         Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker domains.")
       in
       let runtime =
         Arg.(value & opt string "sched" & info [ "runtime" ] ~doc:"sched | select.")
       in
       let max_batch =
         Arg.(value & opt int 64 & info [ "max-batch" ] ~doc:"Group-commit cap.")
       in
       let write_ns =
         Arg.(value & opt int 0 & info [ "write-ns" ] ~doc:"Injected write latency.")
       in
       Cmd.v
         (Cmd.info "serve-child"
            ~doc:
              "Internal: NVServe in a child process for the conns track \
               (prints PORT, serves until stdin closes).")
         Term.(const conns_child_main $ workers $ runtime $ max_batch $ write_ns));
      cmd "micro" "Bechamel micro-benchmarks" (fun _ -> micro ());
      cmd "checkers"
        "Observer overhead: checkers-off vs NVRace/NVSan-attached throughput"
        checkers;
      cmd "smoke" "Sub-second trajectory probe (fig5 hash point)" smoke;
      cmd "telemetry"
        "Telemetry-plane overhead: sampler off vs 1-in-100 vs every request"
        telemetry_bench;
      cmd "all" "Run every experiment" run_all;
    ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
