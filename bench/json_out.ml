(* Machine-readable bench output: collects flat records during a run and
   writes one JSON document at exit when [--json FILE] was given.

   Schema ("nvlf-bench/2", also documented in EXPERIMENTS.md):

   { "schema": "nvlf-bench/2",
     "generated_unix": <float seconds since epoch>,
     "argv": [<string>...],
     "records": [ { "kind": "throughput" | "ratio"
                          | "latency" | "attribution", ... } ... ] }

   A "throughput" record carries experiment/structure/flavor/size/threads/
   mix/duration/write_ns/ops_per_s plus a "substrate" object with the
   heap's aggregate Pstats counters for the measured window. A "ratio"
   record relates one flavor's ops/s to the log-based baseline at the same
   point. With --latency/--trace, a "latency" record per (point, op) holds
   NVTrace percentiles (p50/p99/p999/mean/max ns) and an "attribution"
   record the persistence-cost totals diffed at the op brackets. Values
   are flat so downstream tooling can load the file with any JSON parser
   and pivot freely.

   /2 over /1: the substrate object grew link-cache / APT / epoch-stall
   counters and derived rates (lc_hit_rate, lines_per_batch,
   flushes_per_store, apt_hit_rate), and the latency/attribution kinds are
   new; every /1 field is unchanged, so /1 consumers can read /2 files.
   Additive within /2: substrate group-commit counters (group_commits,
   group_ops, deferred_links, ops_per_commit) and the "loadgen" kind's
   fence/batch-depth/inflight fields. *)

type v = I of int | F of float | S of string | L of v list | O of (string * v) list

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | I n -> Buffer.add_string b (string_of_int n)
  | F f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
      else Buffer.add_string b "null"
  | S s ->
      Buffer.add_char b '"';
      buf_add_escaped b s;
      Buffer.add_char b '"'
  | L vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        vs;
      Buffer.add_char b ']'
  | O fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          emit b (S k);
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let path : string option ref = ref None
let experiment = ref "-"
let records : v list ref = ref []

(* Fail fast on an unwritable path — before the measurement, not after. *)
let set_path p =
  (try close_out (open_out p)
   with Sys_error msg ->
     Printf.eprintf "nvlf-bench: cannot write JSON output: %s\n%!" msg;
     exit 2);
  path := Some p
let enabled () = !path <> None
let set_experiment name = experiment := name

(* Records accumulate in reverse; [write] restores order. *)
let add ~kind fields =
  if enabled () then
    records := O (("kind", S kind) :: ("experiment", S !experiment) :: fields) :: !records

let substrate_fields (st : Nvm.Pstats.t) =
  O
    [
      ("loads", I st.loads);
      ("stores", I st.stores);
      ("cas", I st.cas);
      ("write_backs", I st.write_backs);
      ("fences", I st.fences);
      ("sync_batches", I st.sync_batches);
      ("lines_drained", I st.lines_drained);
      ("log_entries", I st.log_entries);
      ("lc_adds", I st.lc_adds);
      ("lc_fails", I st.lc_fails);
      ("lc_flushes", I st.lc_flushes);
      ("apt_hits", I st.apt_hits);
      ("apt_misses", I st.apt_misses);
      ("allocs", I st.allocs);
      ("frees", I st.frees);
      ("epoch_stalls", I st.epoch_stalls);
      ("group_commits", I st.group_commits);
      ("group_ops", I st.group_ops);
      ("deferred_links", I st.deferred_links);
      ("lc_hit_rate", F (Nvm.Pstats.lc_hit_rate st));
      ("lines_per_batch", F (Nvm.Pstats.lines_per_batch st));
      ("flushes_per_store", F (Nvm.Pstats.flushes_per_store st));
      ("apt_hit_rate", F (Nvm.Pstats.apt_hit_rate st));
      ("ops_per_commit", F (Nvm.Pstats.ops_per_commit st));
    ]

let write () =
  match !path with
  | None -> ()
  | Some file ->
      let doc =
        O
          [
            ("schema", S "nvlf-bench/2");
            ("generated_unix", F (Unix.gettimeofday ()));
            ("argv", L (Array.to_list (Array.map (fun s -> S s) Sys.argv)));
            ("records", L (List.rev !records));
          ]
      in
      let b = Buffer.create 4096 in
      emit b doc;
      Buffer.add_char b '\n';
      let oc = open_out file in
      Buffer.output_buffer oc b;
      close_out oc;
      Printf.printf "wrote %d JSON records to %s\n%!" (List.length !records) file
