(* Durable MPMC queue: sequential model agreement in every flavor,
   multi-domain stress, crash + recovery idempotence, whole-history
   linearizability (live and durable), sanitizer cleanliness, exhaustive
   small-scope crash enumeration, and the producer-consumer drill. *)

module I = Harness.Instance
module QI = Harness.Queue_instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_flavors = [ I.Volatile; I.Lp; I.Lc; I.Nvt; I.Lf ]
let strict_flavors = [ I.Lp; I.Nvt; I.Lf ]

let mkq ?(nthreads = 1) flavor =
  QI.create ~nthreads ~size_hint:512 ~structure:QI.Mpmc ~flavor ()

(* ---- sequential semantics ---------------------------------------------- *)

let test_fifo_basic flavor () =
  let q = mkq flavor in
  for v = 1 to 100 do
    QI.put q ~tid:0 ~value:v
  done;
  check_int "size" 100 (QI.size q);
  Alcotest.(check (list int)) "contents" (List.init 100 (fun i -> i + 1))
    (QI.to_list q);
  for v = 1 to 100 do
    Alcotest.(check (option int)) "fifo order" (Some v) (QI.take q ~tid:0)
  done;
  Alcotest.(check (option int)) "empty" None (QI.take q ~tid:0);
  check_int "empty size" 0 (QI.size q)

(* Random enqueue/dequeue stream against a Stdlib.Queue model. *)
let test_model flavor () =
  let q = mkq flavor in
  let model = Queue.create () in
  let rng = Workload.Xoshiro.make ~seed:91 in
  let counter = ref 0 in
  for _ = 1 to 2000 do
    if Workload.Xoshiro.below rng 2 = 0 then begin
      incr counter;
      QI.put q ~tid:0 ~value:!counter;
      Queue.add !counter model
    end
    else
      Alcotest.(check (option int))
        "model agreement" (Queue.take_opt model) (QI.take q ~tid:0)
  done;
  check_int "final size" (Queue.length model) (QI.size q);
  Alcotest.(check (list int)) "final contents"
    (List.of_seq (Queue.to_seq model))
    (QI.to_list q)

(* ---- multi-domain stress ----------------------------------------------- *)

(* 2 producers x 2 consumers; afterwards every produced value is consumed or
   drained exactly once, in per-producer order. *)
let test_stress flavor () =
  let per_producer = 500 in
  let q = mkq ~nthreads:4 flavor in
  let producers_left = Atomic.make 2 in
  let consumed = Array.make 2 [] in
  let producer pid () =
    for n = 1 to per_producer do
      QI.put q ~tid:pid ~value:(((pid + 1) * 1_000_000) + n)
    done;
    Atomic.decr producers_left
  in
  let consumer cid () =
    let tid = 2 + cid in
    let continue = ref true in
    while !continue do
      match QI.take q ~tid with
      | Some v -> consumed.(cid) <- v :: consumed.(cid)
      | None ->
          if Atomic.get producers_left = 0 then begin
            (* Every put happens-before the producer's decrement, so a None
               observed AFTER reading 0 means genuinely drained. A None
               observed before the flag read proves nothing — the last items
               may have been published in between. *)
            match QI.take q ~tid with
            | Some v -> consumed.(cid) <- v :: consumed.(cid)
            | None -> continue := false
          end
          else Domain.cpu_relax ()
    done
  in
  let ds =
    [
      Domain.spawn (producer 0);
      Domain.spawn (producer 1);
      Domain.spawn (consumer 0);
      Domain.spawn (consumer 1);
    ]
  in
  List.iter Domain.join ds;
  let all = List.concat [ List.rev consumed.(0); List.rev consumed.(1) ] in
  check_int "everything consumed" (2 * per_producer) (List.length all);
  check_int "drained" 0 (QI.size q);
  let sorted = List.sort_uniq compare all in
  check_int "no duplicates" (2 * per_producer) (List.length sorted);
  (* Per-consumer streams respect each producer's order. *)
  Array.iter
    (fun l ->
      let last = Hashtbl.create 4 in
      List.iter
        (fun v ->
          let p = v / 1_000_000 and n = v mod 1_000_000 in
          (match Hashtbl.find_opt last p with
          | Some m -> check_bool "per-producer order" true (n > m)
          | None -> ());
          Hashtbl.replace last p n)
        (List.rev l))
    consumed

(* ---- crash + recovery -------------------------------------------------- *)

(* Ack-durable flavors: quiescent crash must preserve contents exactly, and
   recovery must be repeatable (operate, crash again, recover again). *)
let test_crash_recover_twice flavor () =
  let q = mkq flavor in
  for v = 1 to 50 do
    QI.put q ~tid:0 ~value:v
  done;
  for _ = 1 to 20 do
    ignore (QI.take q ~tid:0)
  done;
  let q, _, _ = QI.crash_and_recover ~seed:21 q in
  Alcotest.(check (list int)) "first recovery"
    (List.init 30 (fun i -> i + 21))
    (QI.to_list q);
  for _ = 1 to 10 do
    ignore (QI.take q ~tid:0)
  done;
  for v = 51 to 60 do
    QI.put q ~tid:0 ~value:v
  done;
  let q, _, _ = QI.crash_and_recover ~seed:22 q in
  Alcotest.(check (list int)) "second recovery"
    (List.init 20 (fun i -> i + 31) @ List.init 10 (fun i -> i + 51))
    (QI.to_list q)

(* Link-cache: a crash may lose a suffix of buffered effects, but what
   recovers must be an ordered duplicate-free window of the acked stream. *)
let test_crash_recover_lc () =
  let q = mkq I.Lc in
  for v = 1 to 60 do
    QI.put q ~tid:0 ~value:v
  done;
  for _ = 1 to 25 do
    ignore (QI.take q ~tid:0)
  done;
  let q, _, _ = QI.crash_and_recover ~seed:23 q in
  let got = QI.to_list q in
  check_bool "subset of produced" true
    (List.for_all (fun v -> v >= 1 && v <= 60) got);
  check_bool "strictly increasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) v -> (ok && v > prev, v))
          (true, 0) got))

(* ---- linearizability --------------------------------------------------- *)

let test_lincheck_live flavor () =
  let o =
    Sanitizer.Lincheck.queue_live_check ~nthreads:2 ~ops_per_thread:24
      ~structure:QI.Mpmc ~flavor ()
  in
  if not (Sanitizer.Lincheck.ok o) then
    Alcotest.failf "%a" Sanitizer.Lincheck.pp_outcome o;
  check_bool "recorded some ops" true (o.Sanitizer.Lincheck.ops_recorded > 0)

let test_lincheck_durable flavor () =
  let o =
    Sanitizer.Lincheck.queue_durable_check ~nthreads:2 ~total_ops:48
      ~structure:QI.Mpmc ~flavor ()
  in
  if not (Sanitizer.Lincheck.ok o) then
    Alcotest.failf "%a" Sanitizer.Lincheck.pp_outcome o

(* ---- sanitizers -------------------------------------------------------- *)

(* Allocations that predate the attach (the sentinel) must be seeded, or
   the volatile tail root catching up over one would read as an unmarked
   first publish. *)
let seed_preexisting san inst =
  let alloc = Lfds.Ctx.allocator inst.QI.ctx in
  QI.iter_reachable inst (fun base ->
      Sanitizer.Nvsan.seed_node san ~base
        ~size:(Nvm.Nvalloc.size_class_of alloc ~tid:0 base));
  List.iter
    (Sanitizer.Nvsan.declare_index_word san)
    (QI.index_words inst)

let fail_on_violations tag san =
  List.iter
    (fun v ->
      Printf.printf "%s: %s\n%!" tag (Sanitizer.Nvsan.violation_to_string v))
    (Sanitizer.Nvsan.violations san);
  check_int (tag ^ ": violations") 0 (Sanitizer.Nvsan.violation_count san)

let test_nvsan_clean flavor () =
  let q = mkq flavor in
  let heap = Lfds.Ctx.heap q.QI.ctx in
  let cfg =
    {
      (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor)) with
      strict_deref = flavor <> I.Volatile;
      root_limit = Lfds.Ctx.static_limit q.QI.ctx;
    }
  in
  let san = Sanitizer.Nvsan.attach ~config:cfg heap in
  seed_preexisting san q;
  let rng = Workload.Xoshiro.make ~seed:5 in
  let counter = ref 0 in
  for _ = 1 to 600 do
    if Workload.Xoshiro.below rng 2 = 0 then begin
      incr counter;
      QI.put q ~tid:0 ~value:!counter
    end
    else ignore (QI.take q ~tid:0)
  done;
  Sanitizer.Nvsan.detach san;
  fail_on_violations ("mpmc-queue/" ^ I.flavor_name flavor) san

let test_nvrace_clean flavor () =
  let q = mkq ~nthreads:4 flavor in
  let heap = Lfds.Ctx.heap q.QI.ctx in
  let det =
    Sanitizer.Nvrace.attach
      ~config:
        {
          (Sanitizer.Nvrace.default_config ()) with
          root_limit = Lfds.Ctx.static_limit q.QI.ctx;
        }
      heap
  in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:((tid * 31) + 5) in
    let counter = ref 0 in
    for _ = 1 to 250 do
      if Workload.Xoshiro.below rng 2 = 0 then begin
        incr counter;
        QI.put q ~tid ~value:((tid * 100_000) + !counter)
      end
      else ignore (QI.take q ~tid)
    done
  in
  let ds = List.init 4 (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  Sanitizer.Nvrace.detach det;
  List.iter
    (fun v ->
      Printf.printf "race: %s\n%!" (Sanitizer.Nvrace.violation_to_string v))
    (Sanitizer.Nvrace.violations det);
  check_int
    ("mpmc-queue/" ^ I.flavor_name flavor ^ ": races")
    0
    (Sanitizer.Nvrace.violation_count det)

(* ---- exhaustive crash enumeration -------------------------------------- *)

let test_crash_enum flavor () =
  let r =
    Sanitizer.Crash_enum.run_queue ~flavor ~ops_per_trip:24 ~trip_start:1
      ~trip_stop:90 ~trip_step:13 ~max_dirty:8 ~structure:QI.Mpmc ()
  in
  List.iter (Printf.printf "crash-enum: %s\n%!") r.Sanitizer.Crash_enum.violations;
  check_int "violations" 0 (List.length r.Sanitizer.Crash_enum.violations);
  check_bool "some crashes enumerated" true
    (r.Sanitizer.Crash_enum.states_checked > 0)

(* ---- producer-consumer drill ------------------------------------------- *)

let test_drill flavor () =
  let r =
    Sanitizer.Queue_drill.run ~producers:2 ~consumers:2 ~ops_per_producer:120
      ~trip:2500 ~structure:QI.Mpmc ~flavor ()
  in
  if not (Sanitizer.Queue_drill.ok r) then
    Alcotest.failf "%a" Sanitizer.Queue_drill.pp_report r;
  check_bool "produced something" true (r.Sanitizer.Queue_drill.produced > 0)

(* ---- suite ------------------------------------------------------------- *)

let per_flavor name flavors f =
  List.map
    (fun fl ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (I.flavor_name fl))
        `Quick (f fl))
    flavors

let () =
  Alcotest.run "queue"
    [
      ("fifo", per_flavor "basic order" all_flavors test_fifo_basic);
      ("model", per_flavor "random stream" all_flavors test_model);
      ("stress", per_flavor "4-domain" [ I.Lp; I.Lf ] test_stress);
      ( "crash",
        per_flavor "recover twice" strict_flavors test_crash_recover_twice
        @ [ Alcotest.test_case "lc window" `Quick test_crash_recover_lc ] );
      ( "lincheck",
        per_flavor "live" [ I.Lp; I.Lf ] test_lincheck_live
        @ per_flavor "durable" strict_flavors test_lincheck_durable );
      ( "sanitizer",
        per_flavor "nvsan clean" all_flavors test_nvsan_clean
        @ per_flavor "nvrace clean" [ I.Lp ] test_nvrace_clean );
      ("crash-enum", per_flavor "small scope" strict_flavors test_crash_enum);
      ("drill", per_flavor "producer-consumer" [ I.Lp; I.Lc; I.Lf ] test_drill);
    ]
