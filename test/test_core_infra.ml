(* Tests for the core machinery: epochs, the active page table, NV-epochs
   reclamation, the link cache, and link-and-persist. *)

open Nvm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Epoch --- *)

let test_epoch_enter_exit () =
  let e = Lfds.Epoch.create ~nthreads:2 () in
  check_int "starts even" 0 (Lfds.Epoch.current e ~tid:0);
  Lfds.Epoch.enter e ~tid:0;
  check_bool "active is odd" true (Lfds.Epoch.is_active (Lfds.Epoch.current e ~tid:0));
  Lfds.Epoch.exit e ~tid:0;
  check_int "two steps" 2 (Lfds.Epoch.current e ~tid:0)

let test_epoch_safe () =
  let e = Lfds.Epoch.create ~nthreads:2 () in
  Lfds.Epoch.enter e ~tid:1;
  let snap = Lfds.Epoch.snapshot e in
  check_bool "unsafe while tid1 active" false (Lfds.Epoch.safe e snap);
  Lfds.Epoch.exit e ~tid:1;
  check_bool "safe once tid1 exits" true (Lfds.Epoch.safe e snap)

let test_epoch_safe_inactive_threads () =
  let e = Lfds.Epoch.create ~nthreads:4 () in
  (* Nobody active: any snapshot is immediately safe. *)
  let snap = Lfds.Epoch.snapshot e in
  check_bool "idle snapshot safe" true (Lfds.Epoch.safe e snap)

let test_epoch_reentry_detection () =
  let e = Lfds.Epoch.create ~nthreads:1 () in
  Lfds.Epoch.enter e ~tid:0;
  (* double enter violates the protocol and is caught by the assert *)
  (try
     Lfds.Epoch.enter e ~tid:0;
     Alcotest.fail "expected assert failure"
   with Assert_failure _ -> ());
  Lfds.Epoch.exit e ~tid:0

(* --- Active page table --- *)

let mk_apt ?(entries_max = 8) ?(trim_threshold = 4) () =
  let h = Heap.create ~size_words:8192 () in
  let apt =
    Lfds.Active_page_table.create h ~base:64 ~nthreads:2 ~entries_max
      ~trim_threshold ()
  in
  (h, apt)

let test_apt_hit_miss () =
  let h, apt = mk_apt () in
  let st = Heap.stats h 0 in
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4096 ~epoch:1
    Lfds.Active_page_table.Alloc;
  check_int "first touch is a miss" 1 st.apt_misses;
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4096 ~epoch:3
    Lfds.Active_page_table.Alloc;
  check_int "second touch is a hit" 1 st.apt_hits;
  check_int "misses unchanged" 1 st.apt_misses;
  check_int "size" 1 (Lfds.Active_page_table.size apt ~tid:0)

let test_apt_miss_is_durable () =
  let h, apt = mk_apt () in
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4096 ~epoch:1
    Lfds.Active_page_table.Unlink;
  Heap.crash h ~eviction_probability:0.0;
  let pages =
    Lfds.Active_page_table.durable_active_pages h ~base:64 ~nthreads:2
      ~entries_max:8
  in
  Alcotest.(check (list int)) "page survives crash" [ 4096 ] pages

let test_apt_trim () =
  let _, apt = mk_apt () in
  for i = 0 to 5 do
    Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:(4096 + (512 * i))
      ~epoch:1 Lfds.Active_page_table.Alloc
  done;
  check_int "six entries" 6 (Lfds.Active_page_table.size apt ~tid:0);
  check_bool "needs trim" true (Lfds.Active_page_table.needs_trim apt ~tid:0);
  let dropped =
    Lfds.Active_page_table.trim apt ~tid:0 ~removable:(fun e ->
        e.Lfds.Active_page_table.last_alloc_epoch < 2)
  in
  check_int "all dropped" 6 dropped;
  check_int "empty" 0 (Lfds.Active_page_table.size apt ~tid:0)

let test_apt_trim_respects_predicate () =
  let _, apt = mk_apt () in
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4096 ~epoch:5
    Lfds.Active_page_table.Alloc;
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4608 ~epoch:1
    Lfds.Active_page_table.Alloc;
  let dropped =
    Lfds.Active_page_table.trim apt ~tid:0 ~removable:(fun e ->
        e.Lfds.Active_page_table.last_alloc_epoch < 5)
  in
  check_int "only stale entry dropped" 1 dropped;
  check_bool "fresh entry kept" true (Lfds.Active_page_table.mem apt ~tid:0 ~page:4096)

let test_apt_full_fails () =
  let _, apt = mk_apt ~entries_max:2 () in
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4096 ~epoch:1
    Lfds.Active_page_table.Alloc;
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4608 ~epoch:1
    Lfds.Active_page_table.Alloc;
  (try
     Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:5120 ~epoch:1
       Lfds.Active_page_table.Alloc;
     Alcotest.fail "expected failure on full table"
   with Failure _ -> ())

let test_apt_slot_reuse_after_trim () =
  let h, apt = mk_apt ~entries_max:2 () in
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:4096 ~epoch:1
    Lfds.Active_page_table.Alloc;
  ignore (Lfds.Active_page_table.trim apt ~tid:0 ~removable:(fun _ -> true));
  Lfds.Active_page_table.ensure_active apt ~tid:0 ~page:7680 ~epoch:1
    Lfds.Active_page_table.Alloc;
  Heap.flush_all h ~tid:0;
  let pages =
    Lfds.Active_page_table.durable_active_pages h ~base:64 ~nthreads:2
      ~entries_max:2
  in
  Alcotest.(check (list int)) "only the live page is durable" [ 7680 ] pages

(* --- Link cache --- *)

let mk_lc () =
  let h = Heap.create ~size_words:4096 () in
  (h, Lfds.Link_cache.create h ~nbuckets:4 ())

let test_lc_add_and_flush () =
  let h, lc = mk_lc () in
  Heap.store h ~tid:0 512 100;
  Heap.persist h ~tid:0 512;
  (match
     Lfds.Link_cache.try_link_and_add lc ~tid:0 ~key:7 ~link:512 ~expected:100
       ~desired:200
   with
  | Lfds.Link_cache.Added -> ()
  | _ -> Alcotest.fail "expected Added");
  check_int "link updated in volatile" 200 (Heap.load h ~tid:0 512);
  check_int "not yet durable" 100 (Heap.durable_load h 512);
  check_int "occupied" 1 (Lfds.Link_cache.occupancy lc);
  Lfds.Link_cache.flush_all lc ~tid:0;
  check_int "durable after flush" 200 (Heap.durable_load h 512);
  check_int "empty after flush" 0 (Lfds.Link_cache.occupancy lc)

let test_lc_cas_failure () =
  let h, lc = mk_lc () in
  Heap.store h ~tid:0 512 100;
  (match
     Lfds.Link_cache.try_link_and_add lc ~tid:0 ~key:7 ~link:512 ~expected:999
       ~desired:200
   with
  | Lfds.Link_cache.Cas_failed -> ()
  | _ -> Alcotest.fail "expected Cas_failed");
  check_int "link untouched" 100 (Heap.load h ~tid:0 512);
  check_int "entry released" 0 (Lfds.Link_cache.occupancy lc)

let test_lc_scan_triggers_flush () =
  let h, lc = mk_lc () in
  Heap.store h ~tid:0 512 100;
  Heap.persist h ~tid:0 512;
  ignore
    (Lfds.Link_cache.try_link_and_add lc ~tid:0 ~key:7 ~link:512 ~expected:100
       ~desired:200);
  Lfds.Link_cache.scan lc ~tid:0 ~key:7;
  check_int "scan made it durable" 200 (Heap.durable_load h 512)

let test_lc_scan_other_key_noop () =
  let h, lc = mk_lc () in
  Heap.store h ~tid:0 512 100;
  Heap.persist h ~tid:0 512;
  ignore
    (Lfds.Link_cache.try_link_and_add lc ~tid:0 ~key:7 ~link:512 ~expected:100
       ~desired:200);
  (* A scan for an unrelated key in another bucket must not flush. *)
  let other =
    (* find a key mapping to a different bucket *)
    let rec go k =
      if
        Lfds.Link_cache.bucket_of lc k <> Lfds.Link_cache.bucket_of lc 7
      then k
      else go (k + 1)
    in
    go 8
  in
  Lfds.Link_cache.scan lc ~tid:0 ~key:other;
  check_int "still volatile" 100 (Heap.durable_load h 512)

let test_lc_full_bucket_flushes () =
  let h, lc = mk_lc () in
  (* Fill one bucket beyond capacity: the 7th add must flush and succeed. *)
  let key = 7 in
  let b = Lfds.Link_cache.bucket_of lc key in
  let added = ref 0 in
  let addr = ref 512 in
  for _ = 1 to 10 do
    (* distinct links, same bucket: reuse same key so bucket is fixed *)
    Heap.store h ~tid:0 !addr 1;
    Heap.persist h ~tid:0 !addr;
    (match
       Lfds.Link_cache.try_link_and_add lc ~tid:0 ~key ~link:!addr ~expected:1
         ~desired:2
     with
    | Lfds.Link_cache.Added -> incr added
    | _ -> ());
    addr := !addr + 64
  done;
  check_int "every add succeeded (bucket auto-flushes)" 10 !added;
  ignore b;
  Lfds.Link_cache.flush_all lc ~tid:0;
  check_int "all durable" 2 (Heap.durable_load h 512)

let test_lc_mark_cleared_after_add () =
  let h, lc = mk_lc () in
  Heap.store h ~tid:0 512 100;
  Heap.persist h ~tid:0 512;
  ignore
    (Lfds.Link_cache.try_link_and_add lc ~tid:0 ~key:7 ~link:512 ~expected:100
       ~desired:200);
  check_bool "no unflushed mark after finalize" false
    (Marked_ptr.is_unflushed (Heap.load h ~tid:0 512))

(* --- Link_persist over a context --- *)

let mk_ctx mode =
  Lfds.Ctx.create
    { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18; mode; nthreads = 2 }

let test_lp_cas_link_durable () =
  let ctx = mk_ctx Lfds.Persist_mode.Link_persist in
  let heap = Lfds.Ctx.heap ctx in
  let slot = Lfds.Ctx.root_slot ctx 1 in
  Heap.store heap ~tid:0 slot 0;
  Heap.persist heap ~tid:0 slot;
  check_bool "cas succeeds" true
    (Lfds.Link_persist.cas_link ctx ~tid:0 ~key:1 ~link:slot ~expected:0
       ~desired:64);
  (* The durable image may retain the unflushed mark (cleared lazily in the
     volatile image and by recovery); the address must be durable. *)
  check_int "durable immediately" 64 (Marked_ptr.addr (Heap.durable_load heap slot));
  check_bool "no mark left" false
    (Marked_ptr.is_unflushed (Heap.load heap ~tid:0 slot))

let test_lp_cas_link_volatile_mode () =
  let ctx = mk_ctx Lfds.Persist_mode.Volatile in
  let heap = Lfds.Ctx.heap ctx in
  let slot = Lfds.Ctx.root_slot ctx 1 in
  check_bool "cas succeeds" true
    (Lfds.Link_persist.cas_link ctx ~tid:0 ~key:1 ~link:slot ~expected:0
       ~desired:64);
  check_int "volatile mode: not durable" 0 (Heap.durable_load heap slot)

let test_lp_help_unflushed () =
  let ctx = mk_ctx Lfds.Persist_mode.Link_persist in
  let heap = Lfds.Ctx.heap ctx in
  let slot = Lfds.Ctx.root_slot ctx 1 in
  (* Simulate a mid-flight link-and-persist left by another thread. *)
  Heap.store heap ~tid:0 slot (Marked_ptr.with_unflushed 64);
  let v = Lfds.Link_persist.read ctx ~tid:1 slot in
  let clean = Lfds.Link_persist.help_unflushed ctx ~tid:1 ~link:slot v in
  check_int "helper returns clean value" 64 clean;
  check_int "helper persisted the line" 64 (Marked_ptr.clear_unflushed (Heap.durable_load heap slot));
  check_bool "mark cleared in volatile" false
    (Marked_ptr.is_unflushed (Heap.load heap ~tid:1 slot))

(* --- Nv_epochs --- *)

let test_nv_epochs_alloc_retire_cycle () =
  let ctx = mk_ctx Lfds.Persist_mode.Link_persist in
  let mem = Lfds.Ctx.mem ctx in
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  let n = Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8 in
  check_bool "valid node" true (n > 0);
  Lfds.Nv_epochs.retire_node mem ~tid:0 n;
  check_int "retired, not freed" 1 (Lfds.Nv_epochs.pending_retired mem ~tid:0);
  Lfds.Nv_epochs.op_end mem ~tid:0;
  Lfds.Nv_epochs.drain mem ~tid:0;
  check_int "freed after drain" 0 (Lfds.Nv_epochs.pending_retired mem ~tid:0)

let test_nv_epochs_no_free_under_active_reader () =
  let ctx = mk_ctx Lfds.Persist_mode.Link_persist in
  let mem = Lfds.Ctx.mem ctx in
  (* tid 1 is mid-operation when tid 0 retires: no reclamation allowed. *)
  Lfds.Nv_epochs.op_begin mem ~tid:1;
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  let n = Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8 in
  Lfds.Nv_epochs.retire_node mem ~tid:0 n;
  Lfds.Nv_epochs.op_end mem ~tid:0;
  Lfds.Nv_epochs.drain mem ~tid:0;
  check_int "still in limbo (reader active)" 1
    (Lfds.Nv_epochs.pending_retired mem ~tid:0);
  Lfds.Nv_epochs.op_end mem ~tid:1;
  Lfds.Nv_epochs.drain mem ~tid:0;
  check_int "freed once reader exits" 0 (Lfds.Nv_epochs.pending_retired mem ~tid:0)

let test_nv_epochs_apt_locality () =
  let ctx = mk_ctx Lfds.Persist_mode.Link_persist in
  let mem = Lfds.Ctx.mem ctx in
  let heap = Lfds.Ctx.heap ctx in
  (* Consecutive allocations: exactly one APT miss (Figure 4's scenario). *)
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  ignore (Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8);
  Lfds.Nv_epochs.op_end mem ~tid:0;
  let miss_after_first = (Heap.stats heap 0).apt_misses in
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  ignore (Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8);
  Lfds.Nv_epochs.op_end mem ~tid:0;
  check_int "second alloc hits the APT" miss_after_first
    (Heap.stats heap 0).apt_misses

let test_nv_epochs_logged_mode_logs () =
  let ctx =
    Lfds.Ctx.create
      {
        (Lfds.Ctx.default_config ()) with
        size_words = 1 lsl 18;
        mem_mode = Lfds.Nv_epochs.Logged;
      }
  in
  let mem = Lfds.Ctx.mem ctx in
  let heap = Lfds.Ctx.heap ctx in
  Lfds.Nv_epochs.op_begin mem ~tid:0;
  ignore (Lfds.Nv_epochs.alloc_node mem ~tid:0 ~size_class:8);
  Lfds.Nv_epochs.op_end mem ~tid:0;
  check_bool "logged mode writes a log entry per alloc" true
    ((Heap.stats heap 0).log_entries >= 1)

(* --- Ctx layout determinism --- *)

let test_ctx_layout_reproducible () =
  let cfg = { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18 } in
  let ctx = Lfds.Ctx.create cfg in
  let s1 = Lfds.Ctx.carve_static ctx 100 in
  let heap = Lfds.Ctx.heap ctx in
  Heap.store heap ~tid:0 s1 77;
  Heap.persist heap ~tid:0 s1;
  Heap.crash heap ~eviction_probability:0.0;
  let ctx', _ = Lfds.Ctx.recover heap cfg in
  let s1' = Lfds.Ctx.carve_static ctx' 100 in
  check_int "same carve across recovery" s1 s1';
  check_int "contents intact" 77 (Heap.load heap ~tid:0 s1')

let test_ctx_recover_rejects_foreign_heap () =
  let heap = Heap.create ~size_words:4096 () in
  (try
     ignore (Lfds.Ctx.recover heap (Lfds.Ctx.default_config ()));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_ctx_root_slots_distinct_lines () =
  let ctx = mk_ctx Lfds.Persist_mode.Link_persist in
  let a = Lfds.Ctx.root_slot ctx 0 and b = Lfds.Ctx.root_slot ctx 1 in
  check_bool "distinct cache lines" true
    (Cacheline.line_of_addr a <> Cacheline.line_of_addr b)

let () =
  Alcotest.run "core-infra"
    [
      ( "epoch",
        [
          Alcotest.test_case "enter/exit" `Quick test_epoch_enter_exit;
          Alcotest.test_case "safe" `Quick test_epoch_safe;
          Alcotest.test_case "idle safe" `Quick test_epoch_safe_inactive_threads;
          Alcotest.test_case "reentry assert" `Quick test_epoch_reentry_detection;
        ] );
      ( "active_page_table",
        [
          Alcotest.test_case "hit/miss" `Quick test_apt_hit_miss;
          Alcotest.test_case "miss durable" `Quick test_apt_miss_is_durable;
          Alcotest.test_case "trim" `Quick test_apt_trim;
          Alcotest.test_case "trim predicate" `Quick test_apt_trim_respects_predicate;
          Alcotest.test_case "full table" `Quick test_apt_full_fails;
          Alcotest.test_case "slot reuse" `Quick test_apt_slot_reuse_after_trim;
        ] );
      ( "link_cache",
        [
          Alcotest.test_case "add+flush" `Quick test_lc_add_and_flush;
          Alcotest.test_case "cas failure" `Quick test_lc_cas_failure;
          Alcotest.test_case "scan flushes" `Quick test_lc_scan_triggers_flush;
          Alcotest.test_case "scan other key" `Quick test_lc_scan_other_key_noop;
          Alcotest.test_case "full bucket" `Quick test_lc_full_bucket_flushes;
          Alcotest.test_case "mark cleared" `Quick test_lc_mark_cleared_after_add;
        ] );
      ( "link_persist",
        [
          Alcotest.test_case "cas durable" `Quick test_lp_cas_link_durable;
          Alcotest.test_case "volatile mode" `Quick test_lp_cas_link_volatile_mode;
          Alcotest.test_case "helping" `Quick test_lp_help_unflushed;
        ] );
      ( "nv_epochs",
        [
          Alcotest.test_case "alloc/retire" `Quick test_nv_epochs_alloc_retire_cycle;
          Alcotest.test_case "reader blocks free" `Quick
            test_nv_epochs_no_free_under_active_reader;
          Alcotest.test_case "APT locality" `Quick test_nv_epochs_apt_locality;
          Alcotest.test_case "logged mode" `Quick test_nv_epochs_logged_mode_logs;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "layout reproducible" `Quick test_ctx_layout_reproducible;
          Alcotest.test_case "foreign heap" `Quick test_ctx_recover_rejects_foreign_heap;
          Alcotest.test_case "root slots" `Quick test_ctx_root_slots_distinct_lines;
        ] );
    ]
