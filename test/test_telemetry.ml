(* Telemetry plane: allocation-free counters/gauges read racily across
   domains, the 1-in-N request sampler's stage machine, and the recovery
   timeline journal the drill report renders. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

module T = Server.Telemetry

(* --- counters: monotone summed reads, exact totals --- *)

let test_counters_multidomain () =
  let tel = T.create ~nworkers:4 ~sample_every:0 in
  let per = 100_000 in
  let stop = Atomic.make false in
  let monotone_ok = Atomic.make true in
  (* A reader polls the summed view while four workers bump: per-location
     monotone word reads mean the sum may lag but never goes backwards. *)
  let reader =
    Domain.spawn (fun () ->
        let lastv = ref 0 in
        while not (Atomic.get stop) do
          let v = T.counter tel T.c_requests in
          if v < !lastv then Atomic.set monotone_ok false;
          lastv := v
        done)
  in
  let doms =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            let w = T.worker tel i in
            for _ = 1 to per do
              T.bump w T.c_requests;
              T.bump_n w T.c_bytes_read 10
            done))
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  Domain.join reader;
  check_bool "summed counter monotone under load" true (Atomic.get monotone_ok);
  check_int "exact request total" (4 * per) (T.counter tel T.c_requests);
  check_int "exact byte total" (40 * per) (T.counter tel T.c_bytes_read);
  check_int "untouched counter still zero" 0 (T.counter tel T.c_rejects)

let test_counter_names_cover_ids () =
  check_int "one name per counter" T.n_counters (Array.length T.counter_names);
  Array.iter
    (fun n -> check_bool "non-empty name" true (String.length n > 0))
    T.counter_names

(* --- gauges: concurrent stores never yield a torn sum --- *)

let test_gauges_not_torn () =
  let tel = T.create ~nworkers:4 ~sample_every:0 in
  for i = 0 to 3 do
    T.set_open_conns (T.worker tel i) 3
  done;
  let stop = Atomic.make false in
  let ok = Atomic.make true in
  (* Workers flip their gauge between 3 and 7: any untorn sum is 12 + 4k,
     k in 0..4 — a reader seeing anything else read a torn word. *)
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let v = T.open_conns tel in
          if v < 12 || v > 28 || v mod 4 <> 0 then Atomic.set ok false
        done)
  in
  let doms =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            let w = T.worker tel i in
            for n = 1 to 200_000 do
              T.set_open_conns w (if n land 1 = 0 then 3 else 7)
            done;
            T.set_open_conns w 3))
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  Domain.join reader;
  check_bool "gauge sum never torn" true (Atomic.get ok);
  check_int "settled sum" 12 (T.open_conns tel)

(* --- command-kind classification --- *)

let test_kind_of () =
  check_int "get" T.c_cmd_get (T.kind_of "get k1");
  check_int "set" T.c_cmd_set (T.kind_of "set k1 0 0 3");
  check_int "delete" T.c_cmd_delete (T.kind_of "delete k1");
  check_int "incr" T.c_cmd_incr (T.kind_of "incr k1 1");
  check_int "stats" T.c_cmd_stats (T.kind_of "stats nvlf");
  check_int "unknown" T.c_cmd_other (T.kind_of "bogus")

(* --- the sampler's stage machine --- *)

let null_fd () = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0

let test_sampler_flow () =
  let tel = T.create ~nworkers:1 ~sample_every:1 in
  let w = T.worker tel 0 in
  let fd = null_fd () in
  T.on_read w;
  T.arm w;
  T.on_request w ~fd ~kind:(T.kind_of "get x");
  T.on_executed w;
  T.on_commit w;
  T.on_written w fd ~drained:true;
  Unix.close fd;
  check_int "one sample closed" 1 (T.counter tel T.c_sampled);
  match T.samples tel with
  | [ s ] ->
      check_int "worker id" 0 s.T.worker;
      check_int "kind recorded" T.c_cmd_get s.T.kind;
      check_bool "stages non-negative" true
        (s.T.queue_ns >= 0. && s.T.parse_ns >= 0. && s.T.execute_ns >= 0.
        && s.T.fence_ns >= 0. && s.T.respond_ns >= 0.);
      check_float "stages partition the total"
        s.T.total_ns
        (s.T.queue_ns +. s.T.parse_ns +. s.T.execute_ns +. s.T.fence_ns
       +. s.T.respond_ns);
      check_int "request histogram counted it" 1
        (Workload.Histogram.count (T.req_hist tel));
      check_int "every stage histogram counted it" T.n_stages
        (List.fold_left ( + ) 0
           (List.init T.n_stages (fun st ->
                Workload.Histogram.count (T.stage_hist tel st))))
  | l -> Alcotest.failf "expected one sample, got %d" (List.length l)

let test_sampler_cadence_and_abort () =
  let tel = T.create ~nworkers:1 ~sample_every:2 in
  let w = T.worker tel 0 in
  let fd = null_fd () in
  let request ?(drained = true) () =
    T.on_read w;
    T.arm w;
    T.on_request w ~fd ~kind:T.c_cmd_set;
    T.on_executed w;
    T.on_commit w;
    T.on_written w fd ~drained
  in
  for _ = 1 to 8 do
    request ()
  done;
  check_int "1-in-2 cadence" 4 (T.counter tel T.c_sampled);
  (* A dead connection aborts the open sample without wedging the sampler. *)
  T.on_read w;
  T.arm w;
  T.on_request w ~fd ~kind:T.c_cmd_set;
  (* skipped turn *)
  T.on_read w;
  T.arm w;
  T.on_request w ~fd ~kind:T.c_cmd_set;
  T.on_executed w;
  T.on_commit w;
  T.on_conn_gone w fd;
  check_int "aborted sample not counted" 4 (T.counter tel T.c_sampled);
  request ();
  request ();
  check_int "sampler re-arms after the abort" 5 (T.counter tel T.c_sampled);
  Unix.close fd

let test_sampler_off_records_nothing () =
  let tel = T.create ~nworkers:1 ~sample_every:0 in
  let w = T.worker tel 0 in
  let fd = null_fd () in
  for _ = 1 to 50 do
    T.on_read w;
    T.arm w;
    T.on_request w ~fd ~kind:T.c_cmd_get;
    T.on_executed w;
    T.on_commit w;
    T.on_written w fd ~drained:true
  done;
  Unix.close fd;
  check_int "no samples" 0 (T.counter tel T.c_sampled);
  check_int "empty ring" 0 (List.length (T.samples tel));
  check_int "empty request histogram" 0 (Workload.Histogram.count (T.req_hist tel))

let test_chrome_trace_export () =
  let tel = T.create ~nworkers:2 ~sample_every:1 in
  let fd = null_fd () in
  List.iter
    (fun i ->
      let w = T.worker tel i in
      T.on_read w;
      T.arm w;
      T.on_request w ~fd ~kind:T.c_cmd_get;
      T.on_executed w;
      T.on_commit w;
      T.on_written w fd ~drained:true)
    [ 0; 1 ];
  Unix.close fd;
  let doc = T.chrome_trace tel in
  check_bool "complete-slice events" true
    (String.length doc > 2
    && doc.[0] = '['
    && doc.[String.length doc - 2] = ']');
  let contains needle =
    let nl = String.length needle and dl = String.length doc in
    let rec go i = i + nl <= dl && (String.sub doc i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "whole-request slice" true (contains "\"cmd_get\"");
  check_bool "stage slice" true (contains "\"cmd_get/execute\"");
  check_bool "one tid per worker" true (contains "\"tid\":1")

(* --- debt histogram --- *)

let test_debt_hist () =
  let tel = T.create ~nworkers:2 ~sample_every:0 in
  T.record_debt (T.worker tel 0) 3;
  T.record_debt (T.worker tel 1) 5;
  let h = T.debt_hist tel in
  check_int "both workers merged" 2 (Workload.Histogram.count h);
  check_bool "max holds the deepest debt" true
    (Workload.Histogram.max_ns h >= 5.)

(* --- recovery timeline journal --- *)

let test_timeline_spans () =
  let tl = Nvm.Timeline.create () in
  let r =
    Nvm.Timeline.with_current tl (fun () ->
        let x =
          Nvm.Timeline.span_current "a" (fun () ->
              Nvm.Timeline.span_current ~detail:"inner" "b" (fun () -> 21))
        in
        Nvm.Timeline.span_current "c" (fun () -> ());
        2 * x)
  in
  check_int "value threads through" 42 r;
  match Nvm.Timeline.events tl with
  | [ a; b; c ] ->
      Alcotest.(check string) "outer first in start order" "a" a.Nvm.Timeline.phase;
      Alcotest.(check string) "nested next" "b" b.Nvm.Timeline.phase;
      Alcotest.(check string) "sibling last" "c" c.Nvm.Timeline.phase;
      check_int "outer depth" 0 a.Nvm.Timeline.depth;
      check_int "nested depth" 1 b.Nvm.Timeline.depth;
      check_int "sibling depth" 0 c.Nvm.Timeline.depth;
      Alcotest.(check string) "detail kept" "inner" b.Nvm.Timeline.detail;
      check_bool "nested within outer" true
        (b.Nvm.Timeline.start_s >= a.Nvm.Timeline.start_s
        && b.Nvm.Timeline.dur_s <= a.Nvm.Timeline.dur_s);
      check_float "depth-0 spans sum to the total"
        (Nvm.Timeline.total_s tl)
        (a.Nvm.Timeline.dur_s +. c.Nvm.Timeline.dur_s)
  | l -> Alcotest.failf "expected 3 events, got %d" (List.length l)

let test_timeline_no_sink () =
  (* Without a sink, span_current is a passthrough — recovery code pays one
     load and no journal entries. *)
  check_int "passthrough value" 7 (Nvm.Timeline.span_current "x" (fun () -> 7));
  let tl = Nvm.Timeline.create () in
  check_int "sink untouched" 0 (List.length (Nvm.Timeline.events tl))

let test_timeline_restores_on_raise () =
  let tl = Nvm.Timeline.create () in
  (try
     Nvm.Timeline.with_current tl (fun () ->
         Nvm.Timeline.span_current "boom" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (match Nvm.Timeline.events tl with
  | [ e ] ->
      Alcotest.(check string) "span recorded despite raise" "boom"
        e.Nvm.Timeline.phase
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  (* The process-wide sink is restored: this span lands nowhere. *)
  Nvm.Timeline.span_current "after" (fun () -> ());
  check_int "sink restored after raise" 1 (List.length (Nvm.Timeline.events tl))

let () =
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "multidomain monotone + exact" `Quick
            test_counters_multidomain;
          Alcotest.test_case "names cover ids" `Quick test_counter_names_cover_ids;
          Alcotest.test_case "gauges never torn" `Quick test_gauges_not_torn;
          Alcotest.test_case "command kinds" `Quick test_kind_of;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "stage flow" `Quick test_sampler_flow;
          Alcotest.test_case "cadence + conn-death abort" `Quick
            test_sampler_cadence_and_abort;
          Alcotest.test_case "off records nothing" `Quick
            test_sampler_off_records_nothing;
          Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_export;
          Alcotest.test_case "fence-debt histogram" `Quick test_debt_hist;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "nested spans" `Quick test_timeline_spans;
          Alcotest.test_case "no sink passthrough" `Quick test_timeline_no_sink;
          Alcotest.test_case "restores on raise" `Quick
            test_timeline_restores_on_raise;
        ] );
    ]
