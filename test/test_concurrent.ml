(* Multi-domain stress: linearizable set behavior under real concurrency,
   epoch safety, link-cache contention, and post-stress integrity. On this
   box domains timeslice on one core, which still exercises all interleaving
   classes via preemption. *)

module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let nthreads = 4

(* Disjoint-range stress: each domain owns keys [tid*1000+1 .. tid*1000+n];
   per-domain results are deterministic, so full verification is exact. *)
let stress_disjoint structure flavor () =
  let inst = Tutil.mk ~nthreads ~size_hint:1024 structure flavor in
  let n = 300 in
  let worker tid () =
    let base = tid * 1000 in
    for i = 1 to n do
      assert (inst.ops.insert ~tid ~key:(base + i) ~value:i)
    done;
    for i = 1 to n do
      if i mod 2 = 0 then assert (inst.ops.remove ~tid ~key:(base + i))
    done;
    for i = 1 to n do
      let expected = if i mod 2 = 0 then None else Some i in
      assert (inst.ops.search ~tid ~key:(base + i) = expected)
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  check_int "final size" (nthreads * (n / 2)) (inst.ops.size ())

(* Contended stress: all domains fight over the same small key range; verify
   global invariants (size within bounds, no duplicate keys, reads sane). *)
let stress_contended structure flavor () =
  let inst = Tutil.mk ~nthreads ~size_hint:256 structure flavor in
  let range = 64 in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:(tid * 7 + 1) in
    for _ = 1 to 2000 do
      let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:range in
      match Workload.Xoshiro.below rng 3 with
      | 0 -> ignore (inst.ops.insert ~tid ~key ~value:key)
      | 1 -> ignore (inst.ops.remove ~tid ~key)
      | _ -> (
          match inst.ops.search ~tid ~key with
          | Some v -> assert (v = key)
          | None -> ())
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  let size = inst.ops.size () in
  check_bool "size within key range" true (size >= 0 && size <= range);
  (* No key appears twice (reachability scan counts each live key once). *)
  let seen = Hashtbl.create 64 in
  let dups = ref 0 in
  for key = 1 to range do
    if inst.ops.search ~tid:0 ~key <> None then
      if Hashtbl.mem seen key then incr dups else Hashtbl.replace seen key ()
  done;
  check_int "no duplicates" 0 !dups

(* Insert/remove pairs across domains must never lose memory safety: run a
   deleting workload and drain; allocator must end balanced. *)
let stress_reclamation structure () =
  let inst = Tutil.mk ~nthreads ~size_hint:512 structure I.Lp in
  let worker tid () =
    for round = 1 to 30 do
      for k = 1 to 40 do
        let key = (tid * 10_000) + k in
        ignore (inst.ops.insert ~tid ~key ~value:round);
        ignore (inst.ops.remove ~tid ~key)
      done
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  check_int "empty after churn" 0 (inst.ops.size ());
  for tid = 0 to nthreads - 1 do
    Lfds.Nv_epochs.drain (Lfds.Ctx.mem inst.ctx) ~tid
  done;
  check_bool "bounded residual allocation" true
    (Nvm.Nvalloc.allocated_count (Lfds.Ctx.allocator inst.ctx) ~tid:0 < 128)

(* Concurrent link-cache traffic: adds, scans and flushes from all domains. *)
let stress_link_cache () =
  let heap = Nvm.Heap.create ~size_words:(1 lsl 16) () in
  let lc = Lfds.Link_cache.create heap ~nbuckets:8 () in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:(tid + 100) in
    for i = 1 to 3000 do
      let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:64 in
      let link = 1024 + (64 * (((tid * 3000) + i) mod 500)) in
      let expected = Nvm.Heap.load heap ~tid link in
      (match
         Lfds.Link_cache.try_link_and_add lc ~tid ~key ~link ~expected
           ~desired:(expected + 8)
       with
      | Lfds.Link_cache.Added | Lfds.Link_cache.Cache_full
      | Lfds.Link_cache.Cas_failed ->
          ());
      if i mod 7 = 0 then Lfds.Link_cache.scan lc ~tid ~key
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  Lfds.Link_cache.flush_all lc ~tid:0;
  check_int "cache drains to empty" 0 (Lfds.Link_cache.occupancy lc)

(* Epoch safety under concurrency: retired nodes are never freed while a
   reader that could hold them is still inside an operation. Indirectly
   validated by the stress tests; here we hammer enter/exit + snapshots. *)
let stress_epochs () =
  let e = Lfds.Epoch.create ~nthreads () in
  let stop = Atomic.make false in
  let worker tid () =
    while not (Atomic.get stop) do
      Lfds.Epoch.enter e ~tid;
      Lfds.Epoch.exit e ~tid
    done
  in
  let checker () =
    for _ = 1 to 2000 do
      let snap = Lfds.Epoch.snapshot e in
      (* safe may be false now, but becomes true eventually *)
      let rec wait n =
        if n = 0 then false
        else if Lfds.Epoch.safe e snap then true
        else begin
          Domain.cpu_relax ();
          wait (n - 1)
        end
      in
      assert (wait 10_000_000)
    done;
    Atomic.set stop true
  in
  let ds = List.init (nthreads - 1) (fun tid -> Domain.spawn (worker tid)) in
  checker ();
  List.iter Domain.join ds

let all4 f flavor =
  List.map
    (fun s ->
      Alcotest.test_case
        (Printf.sprintf "%s(%s)" (I.structure_name s) (I.flavor_name flavor))
        `Slow (f s flavor))
    [ I.List; I.Hash; I.Skiplist; I.Bst ]

let () =
  Alcotest.run "concurrent"
    [
      ("disjoint", all4 stress_disjoint I.Lp @ all4 stress_disjoint I.Lc);
      ("contended", all4 stress_contended I.Lp @ all4 stress_contended I.Log);
      ( "reclamation",
        List.map
          (fun s ->
            Alcotest.test_case (I.structure_name s) `Slow (fun () ->
                stress_reclamation s ()))
          [ I.List; I.Hash; I.Skiplist; I.Bst ] );
      ( "components",
        [
          Alcotest.test_case "link cache" `Slow stress_link_cache;
          Alcotest.test_case "epochs" `Slow stress_epochs;
        ] );
    ]
