(* Workload harness: RNG determinism and distribution, key generation, the
   throughput runner, barriers, and report formatting. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_xoshiro_deterministic () =
  let a = Workload.Xoshiro.make ~seed:7 and b = Workload.Xoshiro.make ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Workload.Xoshiro.next a) (Workload.Xoshiro.next b)
  done

let test_xoshiro_seeds_differ () =
  let a = Workload.Xoshiro.make ~seed:7 and b = Workload.Xoshiro.make ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Workload.Xoshiro.next a = Workload.Xoshiro.next b then incr same
  done;
  check_bool "streams diverge" true (!same < 5)

let test_xoshiro_bounds () =
  let r = Workload.Xoshiro.make ~seed:3 in
  for _ = 1 to 1000 do
    let v = Workload.Xoshiro.below r 10 in
    check_bool "in range" true (v >= 0 && v < 10);
    let v = Workload.Xoshiro.in_range r ~lo:5 ~hi:8 in
    check_bool "in closed range" true (v >= 5 && v <= 8)
  done

let test_xoshiro_uniformish () =
  let r = Workload.Xoshiro.make ~seed:11 in
  let counts = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Workload.Xoshiro.below r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_keygen_mix () =
  let r = Workload.Xoshiro.make ~seed:5 in
  let ins = ref 0 and del = ref 0 and fnd = ref 0 in
  for _ = 1 to 10000 do
    match Workload.Keygen.pick r Workload.Keygen.update_only with
    | Workload.Keygen.Insert -> incr ins
    | Workload.Keygen.Remove -> incr del
    | Workload.Keygen.Search -> incr fnd
  done;
  check_int "no searches in update-only" 0 !fnd;
  check_bool "balanced" true (abs (!ins - !del) < 600)

let test_keygen_prefill () =
  let inst = Tutil.mk Harness.Instance.Hash Harness.Instance.Lp in
  Workload.Keygen.prefill inst.ops ~size:200 ~seed:9;
  check_int "prefilled to size" 200 (inst.ops.size ())

let test_run_throughput_counts () =
  let counter = Atomic.make 0 in
  let r =
    Workload.Run.throughput ~nthreads:2 ~duration:0.05
      ~step:(fun ~tid:_ ~rng:_ -> Atomic.incr counter)
      ~seed:1 ()
  in
  check_int "result matches side effects" (Atomic.get counter) r.total_ops;
  check_int "per-thread sums" r.total_ops
    (Array.fold_left ( + ) 0 r.per_thread);
  check_bool "throughput positive" true (r.throughput > 0.)

let test_barrier () =
  let b = Workload.Barrier.make 3 in
  let hits = Atomic.make 0 in
  let worker () =
    Workload.Barrier.wait b;
    Atomic.incr hits;
    Workload.Barrier.wait b
  in
  let ds = List.init 2 (fun _ -> Domain.spawn worker) in
  Workload.Barrier.wait b;
  (* all three passed phase one *)
  Workload.Barrier.wait b;
  List.iter Domain.join ds;
  check_int "all crossed" 2 (Atomic.get hits)

let test_report_formats () =
  Alcotest.(check string) "ns" "500 ns" (Workload.Report.human_ns 500.);
  Alcotest.(check string) "us" "1.5 us" (Workload.Report.human_ns 1500.);
  Alcotest.(check string) "ms" "2.50 ms" (Workload.Report.human_ns 2.5e6);
  Alcotest.(check string) "ops" "1.50 Mop/s" (Workload.Report.human_ops 1.5e6)

let test_histogram_percentiles () =
  let h = Workload.Histogram.create () in
  for i = 1 to 1000 do
    Workload.Histogram.record h ~ns:(float_of_int i)
  done;
  check_int "count" 1000 (Workload.Histogram.count h);
  let p50 = Workload.Histogram.percentile h 50. in
  check_bool "p50 near 500" true (p50 > 400. && p50 < 620.);
  let p99 = Workload.Histogram.percentile h 99. in
  check_bool "p99 near 990" true (p99 > 850. && p99 < 1200.);
  check_bool "mean near 500" true
    (let m = Workload.Histogram.mean h in
     m > 400. && m < 620.)

(* The histogram against an exact sorted-array reference: every reported
   percentile must sit within one geometric bucket (8% growth, midpoint
   representative => within ~±8.2%) of the true order statistic. *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (p /. 100. *. float_of_int n)))) in
  sorted.(rank - 1)

let check_against_reference samples =
  let h = Workload.Histogram.create () in
  Array.iter (fun ns -> Workload.Histogram.record h ~ns) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun p ->
      let want = exact_percentile sorted p in
      let got = Workload.Histogram.percentile h p in
      let rel = got /. want in
      if rel < 1. /. 1.09 || rel > 1.09 then
        Alcotest.failf "p%g: histogram %.1f vs exact %.1f (x%.3f)" p got want
          rel)
    [ 50.; 90.; 99.; 99.9 ]

let test_histogram_vs_exact_uniform () =
  let r = Workload.Xoshiro.make ~seed:21 in
  check_against_reference
    (Array.init 10_000 (fun _ ->
         float_of_int (Workload.Xoshiro.in_range r ~lo:100 ~hi:1_000_000)))

let test_histogram_vs_exact_log_uniform () =
  let r = Workload.Xoshiro.make ~seed:22 in
  (* Latency-like: log-uniform over 10 ns .. 1 s. *)
  check_against_reference
    (Array.init 10_000 (fun _ ->
         10. ** (1. +. (8. *. float_of_int (Workload.Xoshiro.below r 10_000) /. 10_000.))))

(* The seed reported each bucket's lower bound, so any percentile of a
   constant sample could read as low as the bucket floor; the geometric
   midpoint must stay within half a bucket of the true value. *)
let test_histogram_constant_sample () =
  let h = Workload.Histogram.create () in
  for _ = 1 to 100 do
    Workload.Histogram.record h ~ns:1000.
  done;
  List.iter
    (fun p ->
      let got = Workload.Histogram.percentile h p in
      check_bool
        (Printf.sprintf "p%g of constant 1000 within a bucket (got %g)" p got)
        true
        (got > 920. && got <= 1000.))
    [ 1.; 50.; 100. ]

let test_histogram_merge () =
  let a = Workload.Histogram.create () and b = Workload.Histogram.create () in
  Workload.Histogram.record a ~ns:10.;
  Workload.Histogram.record b ~ns:1000.;
  Workload.Histogram.merge ~into:a b;
  check_int "merged count" 2 (Workload.Histogram.count a)

let test_latency_profile () =
  let h =
    Workload.Run.latency_profile ~n:100 ~step:(fun ~tid:_ ~rng:_ -> ()) ~seed:1 ()
  in
  check_int "profiled all" 100 (Workload.Histogram.count h)

let test_calibrate_positive () =
  check_bool "calibrated write latency sane" true
    (Harness.Calibrate.write_ns () > 0)

let () =
  Alcotest.run "workload"
    [
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_xoshiro_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_xoshiro_bounds;
          Alcotest.test_case "uniform" `Quick test_xoshiro_uniformish;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "mix" `Quick test_keygen_mix;
          Alcotest.test_case "prefill" `Quick test_keygen_prefill;
        ] );
      ( "run",
        [
          Alcotest.test_case "throughput" `Quick test_run_throughput_counts;
          Alcotest.test_case "barrier" `Quick test_barrier;
        ] );
      ( "report",
        [
          Alcotest.test_case "formats" `Quick test_report_formats;
          Alcotest.test_case "calibration" `Quick test_calibrate_positive;
          Alcotest.test_case "histogram" `Quick test_histogram_percentiles;
          Alcotest.test_case "histogram vs exact (uniform)" `Quick
            test_histogram_vs_exact_uniform;
          Alcotest.test_case "histogram vs exact (log-uniform)" `Quick
            test_histogram_vs_exact_log_uniform;
          Alcotest.test_case "histogram constant sample" `Quick
            test_histogram_constant_sample;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "latency profile" `Quick test_latency_profile;
        ] );
    ]
