(* NVSan regression suite: the unmodified structures must come out clean
   under the sanitizer (single-domain strict and 4-domain relaxed), every
   injected bug must be flagged with the right violation class, and the
   exhaustive crash-state enumerator must find all small-scope durable
   images prefix-consistent. *)

module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let nvsan_config ?(strict = false) ctx =
  {
    (Sanitizer.Nvsan.default_config ~durable:true) with
    strict_deref = strict;
    root_limit = Lfds.Ctx.static_limit ctx;
  }

let fail_on_violations tag san =
  let vs = Sanitizer.Nvsan.violations san in
  List.iter
    (fun v ->
      Printf.printf "%s: %s\n%!" tag (Sanitizer.Nvsan.violation_to_string v))
    vs;
  check_int (tag ^ ": violations") 0 (Sanitizer.Nvsan.violation_count san)

(* ---- clean runs: no false positives on the real structures ------------- *)

(* Single-domain, strict deref checking on: every marked link must be
   persisted before anything it points to is dereferenced. *)
let clean_single structure flavor () =
  let inst = Tutil.mk ~size_hint:256 structure flavor in
  let heap = Lfds.Ctx.heap inst.I.ctx in
  let cfg =
    {
      (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor)) with
      strict_deref = flavor <> I.Volatile;
      root_limit = Lfds.Ctx.static_limit inst.I.ctx;
    }
  in
  let san = Sanitizer.Nvsan.attach ~config:cfg heap in
  let rng = Workload.Xoshiro.make ~seed:7 in
  for _ = 1 to 800 do
    let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:96 in
    match Workload.Xoshiro.below rng 10 with
    | 0 | 1 | 2 | 3 -> ignore (inst.I.ops.insert ~tid:0 ~key ~value:key)
    | 4 | 5 | 6 -> ignore (inst.I.ops.remove ~tid:0 ~key)
    | _ -> ignore (inst.I.ops.search ~tid:0 ~key)
  done;
  Sanitizer.Nvsan.detach san;
  fail_on_violations
    (I.structure_name structure ^ "/" ^ I.flavor_name flavor)
    san

(* 4-domain contended run, relaxed (strict deref is single-domain only). *)
let clean_multi structure () =
  let nthreads = 4 in
  let inst = Tutil.mk ~nthreads ~size_hint:256 structure I.Lp in
  let heap = Lfds.Ctx.heap inst.I.ctx in
  let san = Sanitizer.Nvsan.attach ~config:(nvsan_config inst.I.ctx) heap in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:(tid * 31 + 5) in
    for _ = 1 to 400 do
      let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:64 in
      match Workload.Xoshiro.below rng 3 with
      | 0 -> ignore (inst.I.ops.insert ~tid ~key ~value:key)
      | 1 -> ignore (inst.I.ops.remove ~tid ~key)
      | _ -> ignore (inst.I.ops.search ~tid ~key)
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  Sanitizer.Nvsan.detach san;
  fail_on_violations (I.structure_name structure ^ "/4-domain") san

(* ---- injected bugs: every variant must be flagged, correctly ----------- *)

let injected_ctx ?(nthreads = 1) () =
  Lfds.Ctx.create
    { (Lfds.Ctx.default_config ()) with size_words = 1 lsl 18; nthreads }

let injected_bug bug () =
  let ctx = injected_ctx () in
  let cfg = { (nvsan_config ~strict:true ctx) with root_limit = Lfds.Ctx.static_limit ctx } in
  let san = Sanitizer.Nvsan.attach ~config:cfg (Lfds.Ctx.heap ctx) in
  Injected.Bad_list.run_scenario ctx bug;
  Sanitizer.Nvsan.detach san;
  let want = Injected.Bad_list.expected_code bug in
  let codes =
    List.map (fun v -> v.Sanitizer.Nvsan.code) (Sanitizer.Nvsan.violations san)
  in
  check_bool
    (Printf.sprintf "%s flagged as %s (got: %s)"
       (Injected.Bad_list.bug_name bug)
       want
       (String.concat "," codes))
    true
    (List.mem want codes)

let injected_reclaim () =
  let ctx = injected_ctx ~nthreads:2 () in
  let san =
    Sanitizer.Nvsan.attach ~config:(nvsan_config ctx) (Lfds.Ctx.heap ctx)
  in
  Injected.Bad_reclaim.run_scenario ctx;
  Sanitizer.Nvsan.detach san;
  let codes =
    List.map (fun v -> v.Sanitizer.Nvsan.code) (Sanitizer.Nvsan.violations san)
  in
  check_bool
    (Printf.sprintf "reclaim-early flagged (got: %s)" (String.concat "," codes))
    true
    (List.mem Injected.Bad_reclaim.expected_code codes)

(* The faithful path of the corpus list itself must be clean — otherwise the
   bug assertions above prove nothing. *)
let injected_baseline () =
  let ctx = injected_ctx () in
  let san =
    Sanitizer.Nvsan.attach ~config:(nvsan_config ~strict:true ctx)
      (Lfds.Ctx.heap ctx)
  in
  let head = Lfds.Ctx.root_slot ctx 0 in
  let cu = Lfds.Ctx.cursor ctx ~tid:0 in
  for k = 1 to 20 do
    ignore
      (Lfds.Ctx.with_op_c ~name:"good.insert" ctx cu (fun cu ->
           Injected.Bad_list.insert_c ctx cu ~head ~key:k ~value:(k * 10) ()))
  done;
  for k = 1 to 20 do
    if k mod 2 = 0 then
      ignore
        (Lfds.Ctx.with_op_c ~name:"good.remove" ctx cu (fun cu ->
             Injected.Bad_list.remove_c ctx cu ~head ~key:k ()))
  done;
  for k = 1 to 20 do
    let got =
      Lfds.Ctx.with_op_c ~name:"good.search" ctx cu (fun cu ->
          Injected.Bad_list.search_c cu ~head ~key:k)
    in
    let want = if k mod 2 = 0 then None else Some (k * 10) in
    check_bool "corpus list semantics" true (got = want)
  done;
  Sanitizer.Nvsan.detach san;
  fail_on_violations "corpus-baseline" san

(* ---- NVRace: clean runs, injected races, determinism ------------------- *)

let nvrace_config ctx =
  {
    (Sanitizer.Nvrace.default_config ()) with
    root_limit = Lfds.Ctx.static_limit ctx;
  }

let fail_on_races tag det =
  let vs = Sanitizer.Nvrace.violations det in
  List.iter
    (fun v ->
      Printf.printf "%s: %s\n%!" tag (Sanitizer.Nvrace.violation_to_string v))
    vs;
  check_int (tag ^ ": races") 0 (Sanitizer.Nvrace.violation_count det)

(* Single-domain runs must be race-free trivially (program order covers
   everything) — this is the smoke test that the detector's shadow-state
   bookkeeping itself doesn't manufacture conflicts. *)
let race_clean_single structure flavor () =
  let inst = Tutil.mk ~size_hint:256 structure flavor in
  let heap = Lfds.Ctx.heap inst.I.ctx in
  let det = Sanitizer.Nvrace.attach ~config:(nvrace_config inst.I.ctx) heap in
  let rng = Workload.Xoshiro.make ~seed:11 in
  for _ = 1 to 800 do
    let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:96 in
    match Workload.Xoshiro.below rng 10 with
    | 0 | 1 | 2 | 3 -> ignore (inst.I.ops.insert ~tid:0 ~key ~value:key)
    | 4 | 5 | 6 -> ignore (inst.I.ops.remove ~tid:0 ~key)
    | _ -> ignore (inst.I.ops.search ~tid:0 ~key)
  done;
  Sanitizer.Nvrace.detach det;
  fail_on_races
    (I.structure_name structure ^ "/" ^ I.flavor_name flavor ^ "/races")
    det

(* Contended runs: the real structures' publish discipline (CAS release ->
   load acquire) must leave no unordered pair on pointer-bearing words. *)
let race_clean_multi ?(nthreads = 2) structure flavor () =
  let inst = Tutil.mk ~nthreads ~size_hint:256 structure flavor in
  let heap = Lfds.Ctx.heap inst.I.ctx in
  let det = Sanitizer.Nvrace.attach ~config:(nvrace_config inst.I.ctx) heap in
  let worker tid () =
    let rng = Workload.Xoshiro.make ~seed:((tid * 37) + 3) in
    for _ = 1 to 400 do
      let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:64 in
      match Workload.Xoshiro.below rng 3 with
      | 0 -> ignore (inst.I.ops.insert ~tid ~key ~value:key)
      | 1 -> ignore (inst.I.ops.remove ~tid ~key)
      | _ -> ignore (inst.I.ops.search ~tid ~key)
    done
  in
  let ds = List.init nthreads (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  Sanitizer.Nvrace.detach det;
  fail_on_races
    (Printf.sprintf "%s/%s/%d-domain races" (I.structure_name structure)
       (I.flavor_name flavor) nthreads)
    det

(* The corpus list's faithful path interleaved across two logical threads
   must come out race-free — otherwise the injected-race assertions below
   prove nothing. *)
let race_baseline () =
  let ctx = injected_ctx ~nthreads:2 () in
  let det =
    Sanitizer.Nvrace.attach ~config:(nvrace_config ctx) (Lfds.Ctx.heap ctx)
  in
  let head = Lfds.Ctx.root_slot ctx 0 in
  let cu0 = Lfds.Ctx.cursor ctx ~tid:0 in
  let cu1 = Lfds.Ctx.cursor ctx ~tid:1 in
  let op cu name f = Lfds.Ctx.with_op_c ~name ctx cu f in
  ignore
    (op cu0 "good.insert" (fun cu ->
         Injected.Race_list.insert_c ctx cu ~head ~key:10 ~value:100 ()));
  ignore
    (op cu1 "good.search" (fun cu ->
         Injected.Race_list.search_c cu ~head ~key:10));
  ignore
    (op cu1 "good.insert" (fun cu ->
         Injected.Race_list.insert_c ctx cu ~head ~key:20 ~value:200 ()));
  ignore
    (op cu0 "good.search" (fun cu ->
         Injected.Race_list.search_c cu ~head ~key:20));
  Sanitizer.Nvrace.detach det;
  fail_on_races "race-baseline" det

let injected_race race () =
  let ctx = injected_ctx ~nthreads:2 () in
  let det =
    Sanitizer.Nvrace.attach ~config:(nvrace_config ctx) (Lfds.Ctx.heap ctx)
  in
  Injected.Race_list.run_scenario ctx race;
  Sanitizer.Nvrace.detach det;
  let want = Injected.Race_list.expected_code race in
  let codes =
    List.map
      (fun v -> v.Sanitizer.Nvrace.code)
      (Sanitizer.Nvrace.violations det)
  in
  check_bool
    (Printf.sprintf "%s flagged as %s (got: %s)"
       (Injected.Race_list.race_name race)
       want
       (String.concat "," codes))
    true
    (List.mem want codes);
  (* ...and with only that class: the corpus is built so each variant
     manifests exactly one kind of race. *)
  check_bool
    (Printf.sprintf "%s flagged only as %s (got: %s)"
       (Injected.Race_list.race_name race)
       want
       (String.concat "," codes))
    true
    (List.for_all (( = ) want) codes)

(* A deterministic 4-logical-tid schedule with repeated racy publishes must
   produce byte-identical violation reports on every run: no timestamps, no
   physical-address hashing, no schedule-dependent state in the reports. *)
let four_tid_race_report () =
  let ctx = injected_ctx ~nthreads:4 () in
  let det =
    Sanitizer.Nvrace.attach ~config:(nvrace_config ctx) (Lfds.Ctx.heap ctx)
  in
  let head = Lfds.Ctx.root_slot ctx 0 in
  let cus = Array.init 4 (fun tid -> Lfds.Ctx.cursor ctx ~tid) in
  let op tid name f = Lfds.Ctx.with_op_c ~name ctx cus.(tid) f in
  (* warm-up: bootstrap every tid before the racy section *)
  for tid = 0 to 3 do
    ignore
      (op tid "race.insert" (fun cu ->
           Injected.Race_list.insert_c ctx cu ~head ~key:(100 + tid)
             ~value:tid ()))
  done;
  for round = 0 to 3 do
    ignore
      (op 0 "race.insert" (fun cu ->
           Injected.Race_list.insert_c ctx cu ~racy:true ~head
             ~key:(10 + round) ~value:round ()));
    for tid = 1 to 3 do
      ignore
        (op tid "race.search" (fun cu ->
             Injected.Race_list.search_c cu ~head ~key:(10 + round)))
    done
  done;
  Sanitizer.Nvrace.detach det;
  check_bool "4-tid schedule produced races" true
    (Sanitizer.Nvrace.violation_count det > 0);
  String.concat "\n"
    (List.map Sanitizer.Nvrace.violation_to_string
       (Sanitizer.Nvrace.violations det))

let race_determinism () =
  let r1 = four_tid_race_report () in
  let r2 = four_tid_race_report () in
  Alcotest.(check string) "byte-identical race reports" r1 r2

(* ---- crash-state enumeration ------------------------------------------ *)

let enum ?(flavor = I.Lp) structure ~trip_stop ~trip_step () =
  let r =
    Sanitizer.Crash_enum.run ~structure ~flavor ~trip_start:3 ~trip_stop
      ~trip_step ~max_dirty:10 ()
  in
  Printf.printf "%s/%s: %s\n%!"
    (I.structure_name structure)
    (I.flavor_name flavor)
    (Format.asprintf "%a" Sanitizer.Crash_enum.pp_result r);
  check_bool "some trips crashed" true (r.Sanitizer.Crash_enum.crashes > 0);
  check_bool "some states enumerated" true
    (r.Sanitizer.Crash_enum.states_checked > 0);
  List.iter print_endline r.Sanitizer.Crash_enum.violations;
  check_int "prefix-consistency violations" 0
    (List.length r.Sanitizer.Crash_enum.violations)

let all4 f flavor =
  List.map
    (fun s ->
      Alcotest.test_case
        (I.structure_name s ^ "/" ^ I.flavor_name flavor)
        `Quick (f s flavor))
    [ I.List; I.Hash; I.Skiplist; I.Bst ]

let () =
  Alcotest.run "sanitizer"
    [
      ( "clean-single",
        all4 clean_single I.Lp @ all4 clean_single I.Lc
        @ all4 clean_single I.Nvt @ all4 clean_single I.Lf
        @ all4 clean_single I.Volatile );
      ( "clean-multi",
        List.map
          (fun s ->
            Alcotest.test_case (I.structure_name s) `Slow (clean_multi s))
          [ I.List; I.Hash; I.Skiplist; I.Bst ] );
      ( "injected",
        Alcotest.test_case "faithful baseline is clean" `Quick
          injected_baseline
        :: Alcotest.test_case "premature reclamation" `Quick injected_reclaim
        :: List.map
             (fun bug ->
               Alcotest.test_case (Injected.Bad_list.bug_name bug) `Quick
                 (injected_bug bug))
             Injected.Bad_list.all_bugs );
      ( "race-clean",
        all4 race_clean_single I.Lp @ all4 race_clean_single I.Lc
        @ all4 race_clean_single I.Nvt @ all4 race_clean_single I.Lf
        @ all4 race_clean_single I.Volatile
        @ List.concat_map
            (fun s ->
              [
                Alcotest.test_case
                  (I.structure_name s ^ "/lp/2-domain")
                  `Quick
                  (race_clean_multi s I.Lp);
                Alcotest.test_case
                  (I.structure_name s ^ "/lf/2-domain")
                  `Quick
                  (race_clean_multi s I.Lf);
                Alcotest.test_case
                  (I.structure_name s ^ "/lp/4-domain")
                  `Slow
                  (race_clean_multi ~nthreads:4 s I.Lp);
              ])
            [ I.List; I.Hash; I.Skiplist; I.Bst ] );
      ( "race-injected",
        Alcotest.test_case "faithful interleave is race-free" `Quick
          race_baseline
        :: Alcotest.test_case "report determinism (4 tids)" `Quick
             race_determinism
        :: List.map
             (fun race ->
               Alcotest.test_case
                 (Injected.Race_list.race_name race)
                 `Quick (injected_race race))
             Injected.Race_list.all_races );
      ( "crash-enum",
        [
          Alcotest.test_case "list" `Quick
            (enum I.List ~trip_stop:240 ~trip_step:11);
          Alcotest.test_case "hash" `Quick
            (enum I.Hash ~trip_stop:240 ~trip_step:11);
          Alcotest.test_case "skiplist" `Slow
            (enum I.Skiplist ~trip_stop:320 ~trip_step:13);
          Alcotest.test_case "bst" `Slow
            (enum I.Bst ~trip_stop:320 ~trip_step:13);
          Alcotest.test_case "list/nvt" `Quick
            (enum ~flavor:I.Nvt I.List ~trip_stop:240 ~trip_step:11);
          Alcotest.test_case "hash/nvt" `Quick
            (enum ~flavor:I.Nvt I.Hash ~trip_stop:240 ~trip_step:11);
          Alcotest.test_case "skiplist/nvt" `Slow
            (enum ~flavor:I.Nvt I.Skiplist ~trip_stop:320 ~trip_step:13);
          Alcotest.test_case "bst/nvt" `Slow
            (enum ~flavor:I.Nvt I.Bst ~trip_stop:320 ~trip_step:13);
          Alcotest.test_case "list/lf" `Quick
            (enum ~flavor:I.Lf I.List ~trip_stop:240 ~trip_step:11);
          Alcotest.test_case "hash/lf" `Quick
            (enum ~flavor:I.Lf I.Hash ~trip_stop:240 ~trip_step:11);
          Alcotest.test_case "skiplist/lf" `Slow
            (enum ~flavor:I.Lf I.Skiplist ~trip_stop:320 ~trip_step:13);
          Alcotest.test_case "bst/lf" `Slow
            (enum ~flavor:I.Lf I.Bst ~trip_stop:320 ~trip_step:13);
        ] );
    ]
