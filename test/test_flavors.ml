(* Fence-minimal persistence flavors: NVTraverse and link-free.

   Covers the flavor-matrix plumbing added with the shootout: the canonical
   [Persist_mode] parser round-trip, model agreement of both new flavors on
   every structure, crash + recovery correctness (link-free recovery is a
   full rebuild from validity words), recovery idempotence (recovering twice
   back-to-back yields identical reachable sets and no double-frees), and
   the fence-budget claim that NVTraverse spends strictly fewer fences per
   operation than link-and-persist on read-heavy mixes. *)

module I = Harness.Instance
module PM = Lfds.Persist_mode

(* --- satellite: Persist_mode.of_string/to_string round-trip ----------- *)

let test_mode_round_trip () =
  List.iter
    (fun m ->
      match PM.of_string (PM.to_string m) with
      | Ok m' ->
          Alcotest.(check string)
            (PM.to_string m) (PM.to_string m) (PM.to_string m')
      | Error e -> Alcotest.failf "round-trip %s: %s" (PM.to_string m) e)
    PM.all;
  (* Short flag spellings all land on the intended constructor. *)
  List.iter
    (fun (s, expect) ->
      match PM.of_string s with
      | Ok m ->
          Alcotest.(check string) s (PM.to_string expect) (PM.to_string m)
      | Error e -> Alcotest.failf "%s: %s" s e)
    [
      ("lp", PM.Link_persist);
      ("lc", PM.Link_cache);
      ("nvt", PM.Nvtraverse);
      ("lf", PM.Link_free);
      ("dram", PM.Volatile);
    ];
  (match PM.of_string "bogus" with
  | Ok _ -> Alcotest.fail "of_string must reject unknown spellings"
  | Error _ -> ());
  (* The harness-level parser covers every flavor plus the WAL baseline. *)
  List.iter
    (fun f ->
      match I.flavor_of_string (I.flavor_name f) with
      | Ok f' -> Alcotest.(check bool) (I.flavor_name f) true (f = f')
      | Error e -> Alcotest.failf "flavor %s: %s" (I.flavor_name f) e)
    I.all_flavors

(* --- sequential model agreement --------------------------------------- *)

let model_cases =
  List.concat_map
    (fun structure ->
      List.map
        (fun (flavor, tag) ->
          Tutil.qt
            (Tutil.model_property
               ~name:
                 (Printf.sprintf "%s/%s model" (I.structure_name structure) tag)
               ~structure ~flavor ~count:25))
        [ (I.Nvt, "nvt"); (I.Lf, "lf") ])
    I.all_structures

(* --- crash + recovery correctness ------------------------------------- *)

let populate inst ~n =
  for k = 1 to n do
    ignore (inst.I.ops.Lfds.Set_intf.insert ~tid:0 ~key:k ~value:(k * 7))
  done;
  for k = 1 to n do
    if k mod 3 = 0 then ignore (inst.I.ops.Lfds.Set_intf.remove ~tid:0 ~key:k)
  done

let expect ~n k = if k > n || k mod 3 = 0 then None else Some (k * 7)

let check_contents name inst ~n =
  for k = 1 to n + 8 do
    let got = inst.I.ops.Lfds.Set_intf.search ~tid:0 ~key:k in
    if got <> expect ~n k then
      Alcotest.failf "%s: key %d holds %s" name k
        (match got with None -> "nothing" | Some v -> string_of_int v)
  done

let crash_recover_case structure flavor () =
  let inst = Tutil.mk ~size_hint:256 structure flavor in
  let n = 240 in
  populate inst ~n;
  check_contents "pre-crash" inst ~n;
  let inst, _, _ = I.crash_and_recover ~seed:0xC0FFEE inst in
  check_contents "post-recovery" inst ~n;
  (* The recovered structure must stay fully operational. *)
  Alcotest.(check bool)
    "reinsert" true
    (inst.I.ops.Lfds.Set_intf.insert ~tid:0 ~key:3 ~value:33);
  Alcotest.(check (option int))
    "reinserted" (Some 33)
    (inst.I.ops.Lfds.Set_intf.search ~tid:0 ~key:3)

(* --- satellite: recovery idempotence ----------------------------------- *)

(* Recover twice back-to-back (no ops in between): the reachable set must
   be identical and nothing may be freed twice (the allocator's live count
   must not shrink — a double-free would release survivors' slots). The
   strict pre-crash contents check only applies to flavors whose acks are
   durable at response time; link-cache legitimately loses acked operations
   after the last cache flush. *)
let idempotence_case structure flavor () =
  let inst = Tutil.mk ~size_hint:256 structure flavor in
  let n = 180 in
  populate inst ~n;
  let inst1, _, _ = I.crash_and_recover ~seed:0xFEED inst in
  let allocated ctx =
    Nvm.Nvalloc.allocated_count (Lfds.Ctx.allocator ctx) ~tid:0
  in
  let snapshot inst =
    let l = ref [] in
    for k = 1 to n + 8 do
      match inst.I.ops.Lfds.Set_intf.search ~tid:0 ~key:k with
      | Some v -> l := (k, v) :: !l
      | None -> ()
    done;
    List.rev !l
  in
  if Lfds.Persist_mode.acks_durable (I.mode_of_flavor flavor) then
    check_contents "first recovery" inst1 ~n;
  let set1 = snapshot inst1 in
  let live1 = allocated inst1.I.ctx in
  let inst2, _, freed2 = I.recover_only inst1 in
  Alcotest.(check int) "no leaks surfaced twice" 0 freed2;
  Alcotest.(check bool) "identical reachable sets" true (snapshot inst2 = set1);
  Alcotest.(check int) "live allocation count stable" live1
    (allocated inst2.I.ctx)

(* --- fence budget: nvt < lp on read-heavy mixes ------------------------ *)

let fences_per_op structure flavor ~update_pct =
  let inst = Tutil.mk ~size_hint:512 structure flavor in
  Workload.Keygen.prefill inst.I.ops ~size:512 ~seed:11;
  Nvm.Heap.reset_stats (Lfds.Ctx.heap inst.I.ctx);
  let rng = Workload.Xoshiro.make ~seed:77 in
  let ops = 4000 in
  for _ = 1 to ops do
    let key = 1 + Workload.Xoshiro.below rng 1024 in
    if Workload.Xoshiro.below rng 100 < update_pct then begin
      if Workload.Xoshiro.chance rng ~num:1 ~den:2 then
        ignore (inst.I.ops.Lfds.Set_intf.insert ~tid:0 ~key ~value:key)
      else ignore (inst.I.ops.Lfds.Set_intf.remove ~tid:0 ~key)
    end
    else ignore (inst.I.ops.Lfds.Set_intf.search ~tid:0 ~key)
  done;
  let st = Nvm.Heap.aggregate_stats (Lfds.Ctx.heap inst.I.ctx) in
  float_of_int st.Nvm.Pstats.fences /. float_of_int ops

let fence_budget_case structure () =
  List.iter
    (fun update_pct ->
      let lp = fences_per_op structure I.Lp ~update_pct in
      let nvt = fences_per_op structure I.Nvt ~update_pct in
      let lf = fences_per_op structure I.Lf ~update_pct in
      if nvt >= lp then
        Alcotest.failf "%d%% updates: nvt %.3f fences/op >= lp %.3f"
          update_pct nvt lp;
      if lf >= lp then
        Alcotest.failf "%d%% updates: lf %.3f fences/op >= lp %.3f" update_pct
          lf lp)
    [ 10; 50 ]

let all4 case flavor =
  List.map
    (fun s ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s" (I.structure_name s) (I.flavor_name flavor))
        `Quick (case s flavor))
    I.all_structures

let () =
  Alcotest.run "flavors"
    [
      ( "parser",
        [ Alcotest.test_case "persist-mode round-trip" `Quick test_mode_round_trip ] );
      ("model", model_cases);
      ("crash-recover", all4 crash_recover_case I.Nvt @ all4 crash_recover_case I.Lf);
      ( "recover-idempotent",
        List.concat_map
          (fun f -> all4 idempotence_case f)
          [ I.Lp; I.Lc; I.Nvt; I.Lf ] );
      ( "fence-budget",
        List.map
          (fun s ->
            Alcotest.test_case (I.structure_name s) `Quick (fence_budget_case s))
          I.all_structures );
    ]
