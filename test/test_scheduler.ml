(* The volatile work-stealing scheduler under NVServe: Chase-Lev deque
   semantics and exactly-once delivery under 4 domains, injector hand-off
   with park/unpark wakeups, steal sweeps, and the one-shot fd watch
   discipline over the epoll/poll wait path. *)

module S = Server.Scheduler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- volatile Chase-Lev deque ----------------------------------------- *)

let test_deque_ends () =
  let d = S.Ws_deque.create () in
  for v = 1 to 10 do
    S.Ws_deque.push d v
  done;
  check_int "size" 10 (S.Ws_deque.size d);
  Alcotest.(check (option int)) "pop is LIFO" (Some 10) (S.Ws_deque.pop d);
  Alcotest.(check (option int)) "steal is FIFO" (Some 1) (S.Ws_deque.steal d);
  Alcotest.(check (option int)) "pop again" (Some 9) (S.Ws_deque.pop d);
  Alcotest.(check (option int)) "steal again" (Some 2) (S.Ws_deque.steal d);
  check_int "size after" 6 (S.Ws_deque.size d);
  Alcotest.(check (option int)) "empty pop" None
    (let rec drain () =
       match S.Ws_deque.pop d with Some _ -> drain () | None -> None
     in
     drain ())

(* Growth: the initial 64-slot buffer doubles transparently; contents
   survive the copy with absolute indices intact. *)
let test_deque_growth () =
  let d = S.Ws_deque.create () in
  for v = 1 to 1000 do
    S.Ws_deque.push d v
  done;
  check_int "grew" 1000 (S.Ws_deque.size d);
  Alcotest.(check (option int)) "steal oldest" (Some 1) (S.Ws_deque.steal d);
  Alcotest.(check (option int)) "pop newest" (Some 1000) (S.Ws_deque.pop d);
  let sum = ref 0 in
  let rec drain () =
    match S.Ws_deque.pop d with
    | Some v ->
        sum := !sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  (* 2..999 *)
  check_int "survived the copies" ((999 * 1000 / 2) - 1) !sum

(* Exactly-once under contention: one owner (pushing and popping), three
   thieves. Every pushed value must surface exactly once across all four
   takers. *)
let test_deque_exactly_once () =
  let d = S.Ws_deque.create () in
  let n = 20_000 in
  let seen = Array.make n 0 in
  let mark = function
    | Some v -> seen.(v) <- seen.(v) + 1
    | None -> ()
  in
  let stop = Atomic.make false in
  let thief () =
    let mine = ref [] in
    while not (Atomic.get stop) do
      match S.Ws_deque.steal d with
      | Some v -> mine := v :: !mine
      | None -> Domain.cpu_relax ()
    done;
    !mine
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  (* Owner: push everything, popping a burst every so often. *)
  for v = 0 to n - 1 do
    S.Ws_deque.push d v;
    if v mod 7 = 0 then mark (S.Ws_deque.pop d)
  done;
  let rec drain () =
    match S.Ws_deque.pop d with
    | Some v ->
        seen.(v) <- seen.(v) + 1;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter
    (fun t -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) (Domain.join t))
    thieves;
  let missing = ref 0 and dup = ref 0 in
  Array.iter
    (fun c ->
      if c = 0 then incr missing;
      if c > 1 then incr dup)
    seen;
  check_int "no value lost" 0 !missing;
  check_int "no value duplicated" 0 !dup

(* ---- injector + steal sweep ------------------------------------------- *)

let test_injector_and_steal () =
  let t = S.create ~ndomains:2 in
  let d0 = S.dom t 0 and d1 = S.dom t 1 in
  for v = 1 to 10 do
    S.inject t ~dom:0 v
  done;
  let got = ref [] in
  check_int "drained count" 10
    (S.drain_injector d0 (fun v -> got := v :: !got));
  Alcotest.(check (list int)) "in order" (List.init 10 (fun i -> i + 1))
    (List.rev !got);
  check_int "drained empty" 0 (S.drain_injector d0 (fun _ -> assert false));
  (* Steal sweep: d1 raids d0's deque. *)
  List.iter (S.push d0) [ 1; 2; 3 ];
  check_int "depth" 3 (S.depth d0);
  (match S.try_steal t d1 with
  | Some v, _ -> check_int "stole oldest" 1 v
  | None, _ -> Alcotest.fail "steal found nothing");
  let won, fails = S.try_steal t d1 in
  check_bool "stole again" true (won = Some 2);
  check_int "no failed attempts" 0 fails;
  ignore (S.try_steal t d1);
  let won, fails = S.try_steal t d1 in
  check_bool "empty sweep" true (won = None);
  check_bool "failed attempt counted" true (fails >= 1);
  S.close t

(* Park/unpark under 4 domains: three worker domains park in [wait]; the
   main domain injects tasks at them. Every task must be taken promptly —
   the inject-side wakeup must interrupt a 5 s park, so a run that
   completes is proof the handshake works (lost wakeups would stall until
   the long timeout and blow the test budget). *)
let test_park_unpark () =
  let t = S.create ~ndomains:3 in
  let per_dom = 200 in
  let stop = Atomic.make false in
  let taken = Atomic.make 0 in
  let worker i () =
    let d = S.dom t i in
    while not (Atomic.get stop) do
      let n = S.drain_injector d (fun _ -> Atomic.incr taken) in
      if n = 0 then S.wait d ~timeout_s:5.0 ~on_ready:(fun _ ~readable:_ ~writable:_ -> ())
    done
  in
  let started = Unix.gettimeofday () in
  let workers = List.init 3 (fun i -> Domain.spawn (worker i)) in
  for v = 0 to (3 * per_dom) - 1 do
    S.inject t ~dom:(v mod 3) v;
    if v mod 50 = 0 then Unix.sleepf 0.001
  done;
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get taken < 3 * per_dom && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Atomic.set stop true;
  S.wake_all t;
  List.iter Domain.join workers;
  check_int "every injected task taken" (3 * per_dom) (Atomic.get taken);
  check_bool "woken well before the park timeout" true
    (Unix.gettimeofday () -. started < 8.);
  S.close t

(* ---- one-shot watches -------------------------------------------------- *)

let test_watch_one_shot () =
  let t = S.create ~ndomains:1 in
  let d = S.dom t 0 in
  let r, w = Unix.pipe () in
  let fired = ref [] in
  let on_ready v ~readable ~writable:_ =
    check_bool "readable" true readable;
    fired := v :: !fired
  in
  S.watch d r ~read:true ~write:false 42;
  check_int "registered" 1 (S.watched d);
  (* Nothing ready: a zero-ish timeout must come back empty-handed. *)
  S.wait d ~timeout_s:0.01 ~on_ready;
  check_int "no event yet" 0 (List.length !fired);
  ignore (Unix.write w (Bytes.of_string "x") 0 1);
  S.wait d ~timeout_s:2.0 ~on_ready;
  Alcotest.(check (list int)) "fired once" [ 42 ] !fired;
  check_int "watch consumed" 0 (S.watched d);
  (* One-shot: still-readable data does not re-fire without a re-arm. *)
  S.wait d ~timeout_s:0.01 ~on_ready;
  Alcotest.(check (list int)) "no re-fire" [ 42 ] !fired;
  (* Re-arm: the same fd watches again (the epoll path must MOD the
     disarmed registration in place). *)
  S.watch d r ~read:true ~write:false 43;
  S.wait d ~timeout_s:2.0 ~on_ready;
  Alcotest.(check (list int)) "re-armed and re-fired" [ 43; 42 ] !fired;
  (* Unwatched fds stay silent even when ready. *)
  S.watch d r ~read:true ~write:false 44;
  S.unwatch d r;
  check_int "deregistered" 0 (S.watched d);
  S.wait d ~timeout_s:0.01 ~on_ready;
  Alcotest.(check (list int)) "silent after unwatch" [ 43; 42 ] !fired;
  Unix.close r;
  Unix.close w;
  S.close t

(* fd-number reuse across a close: the successor conn's watch must fire
   even though a prior registration for the same number was consumed. *)
let test_watch_fd_reuse () =
  let t = S.create ~ndomains:1 in
  let d = S.dom t 0 in
  let fired = ref 0 in
  let on_ready v ~readable:_ ~writable:_ = fired := v in
  let r1, w1 = Unix.pipe () in
  S.watch d r1 ~read:true ~write:false 1;
  ignore (Unix.write w1 (Bytes.of_string "x") 0 1);
  S.wait d ~timeout_s:2.0 ~on_ready;
  check_int "first fd fired" 1 !fired;
  S.unwatch d r1;
  Unix.close r1;
  Unix.close w1;
  (* The fresh pipe typically reuses the closed descriptor numbers. *)
  let r2, w2 = Unix.pipe () in
  S.watch d r2 ~read:true ~write:false 2;
  ignore (Unix.write w2 (Bytes.of_string "y") 0 1);
  S.wait d ~timeout_s:2.0 ~on_ready;
  check_int "successor fd fired" 2 !fired;
  Unix.close r2;
  Unix.close w2;
  S.close t

let test_watch_write_interest () =
  let t = S.create ~ndomains:1 in
  let d = S.dom t 0 in
  let r, w = Unix.pipe () in
  let fired = ref 0 in
  S.watch d w ~read:false ~write:true 7;
  S.wait d ~timeout_s:2.0 ~on_ready:(fun v ~readable:_ ~writable ->
      check_bool "writable" true writable;
      fired := v);
  check_int "write interest fired" 7 !fired;
  Unix.close r;
  Unix.close w;
  S.close t

let () =
  Alcotest.run "scheduler"
    [
      ( "ws-deque",
        [
          Alcotest.test_case "ends" `Quick test_deque_ends;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "exactly-once x4 domains" `Quick
            test_deque_exactly_once;
        ] );
      ( "run-queue",
        [
          Alcotest.test_case "injector + steal" `Quick test_injector_and_steal;
          Alcotest.test_case "park/unpark x4 domains" `Quick test_park_unpark;
        ] );
      ( "watches",
        [
          Alcotest.test_case "one-shot lifecycle" `Quick test_watch_one_shot;
          Alcotest.test_case "fd reuse" `Quick test_watch_fd_reuse;
          Alcotest.test_case "write interest" `Quick test_watch_write_interest;
        ] );
    ]
