(* NVTrace: observer multiplexing, flight-recorder semantics (wrap-around,
   concurrent emit, drain-while-tracing), Chrome JSON well-formedness, and
   the attribution-sums-to-aggregate invariant the tool's numbers rest on. *)

module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader — enough to round-trip-parse a Chrome trace
   without adding a parser dependency. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
            advance ();
            skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c" c));
      advance ()
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let string_body () =
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' -> (
            advance ();
            let c = peek () in
            advance ();
            match c with
            | '"' | '\\' | '/' -> Buffer.add_char b c; go ()
            | 'n' -> Buffer.add_char b '\n'; go ()
            | 't' -> Buffer.add_char b '\t'; go ()
            | 'r' -> Buffer.add_char b '\r'; go ()
            | 'b' -> Buffer.add_char b '\b'; go ()
            | 'f' -> Buffer.add_char b '\012'; go ()
            | 'u' ->
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                go ()
            | c -> raise (Bad (Printf.sprintf "bad escape %c" c)))
        | c -> advance (); Buffer.add_char b c; go ()
      in
      expect '"';
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      Num (float_of_string (String.sub s start (!pos - start)))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec fields acc =
              skip_ws ();
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); fields ((k, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | c -> raise (Bad (Printf.sprintf "bad object char %c" c))
            in
            fields []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); Arr [])
          else
            let rec items acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); items (v :: acc)
              | ']' -> advance (); Arr (List.rev (v :: acc))
              | c -> raise (Bad (Printf.sprintf "bad array char %c" c))
            in
            items []
      | '"' -> Str (string_body ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let member k = function
    | Obj fields -> List.assoc k fields
    | _ -> raise (Bad "not an object")

  let to_list = function Arr l -> l | _ -> raise (Bad "not an array")
  let to_string = function Str s -> s | _ -> raise (Bad "not a string")
end

(* ------------------------------------------------------------------ *)
(* Observer multiplexer.                                               *)

let mk_heap () =
  Nvm.Heap.create ~latency:(Nvm.Latency_model.default ()) ~size_words:1024 ()

let test_observer_fanout () =
  let h = mk_heap () in
  let a = ref 0 and b = ref 0 in
  let count r = function Nvm.Heap.Ev_store _ -> incr r | _ -> () in
  check_int "starts empty" 0 (Nvm.Heap.Observer.count h);
  let ha = Nvm.Heap.Observer.add h (count a) in
  let hb = Nvm.Heap.Observer.add h (count b) in
  check_int "two attached" 2 (Nvm.Heap.Observer.count h);
  Nvm.Heap.store h ~tid:0 0 1;
  check_int "first sees store" 1 !a;
  check_int "second sees store" 1 !b;
  Nvm.Heap.Observer.remove h ha;
  Nvm.Heap.store h ~tid:0 0 2;
  check_int "removed stops" 1 !a;
  check_int "remaining continues" 2 !b;
  Nvm.Heap.Observer.remove h ha;
  (* idempotent *)
  Nvm.Heap.Observer.remove h hb;
  Nvm.Heap.store h ~tid:0 0 3;
  check_int "all detached" 2 !b;
  check_int "empty again" 0 (Nvm.Heap.Observer.count h)

let test_observer_order () =
  let h = mk_heap () in
  let log = ref [] in
  let tag name = function
    | Nvm.Heap.Ev_fence _ -> log := name :: !log
    | _ -> ()
  in
  let _ = Nvm.Heap.Observer.add h (tag "first") in
  let _ = Nvm.Heap.Observer.add h (tag "second") in
  Nvm.Heap.fence h ~tid:0;
  check_bool "delivery in attach order" true
    (List.rev !log = [ "first"; "second" ])

(* NVSan and NVTrace share one heap through the multiplexer: the sanitizer
   still sees every event (no violations on a correct structure) while the
   tracer records spans. *)
let test_nvsan_coexists () =
  let inst = Tutil.mk I.Hash I.Lc in
  let heap = Lfds.Ctx.heap inst.ctx in
  let san =
    Sanitizer.Nvsan.attach
      ~config:
        {
          (Sanitizer.Nvsan.default_config ~durable:true) with
          root_limit = Lfds.Ctx.static_limit inst.ctx;
        }
      heap
  in
  let tr = Trace.Nvtrace.attach heap in
  check_int "both attached" 2 (Nvm.Heap.Observer.count heap);
  for k = 1 to 200 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  for k = 1 to 100 do
    ignore (inst.ops.remove ~tid:0 ~key:k)
  done;
  Trace.Nvtrace.detach tr;
  Sanitizer.Nvsan.detach san;
  check_int "sanitizer clean under tracing" 0
    (Sanitizer.Nvsan.violation_count san);
  check_int "tracer saw every op" 300 (Trace.Nvtrace.span_count tr)

(* ------------------------------------------------------------------ *)
(* Flight recorder.                                                    *)

let test_ring_wraparound () =
  let inst = Tutil.mk I.List I.Lp in
  let tr = Trace.Nvtrace.attach ~ring_size:8 (Lfds.Ctx.heap inst.ctx) in
  for k = 1 to 20 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  Trace.Nvtrace.detach tr;
  check_int "all ops counted" 20 (Trace.Nvtrace.span_count tr);
  check_int "ring keeps ring_size" 8 (List.length (Trace.Nvtrace.spans tr));
  check_int "overflow reported dropped" 12 (Trace.Nvtrace.dropped tr);
  (* The retained spans are the newest: keys 13..20, oldest first. *)
  Alcotest.(check (list int))
    "newest spans survive"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun s -> s.Trace.Nvtrace.key) (Trace.Nvtrace.spans tr));
  (* Aggregates cover the whole run, not just the ring. *)
  let _, h = List.hd (Trace.Nvtrace.histograms tr) in
  check_int "histogram survives wrap-around" 20 (Workload.Histogram.count h);
  let total = Trace.Nvtrace.total_attribution tr in
  check_int "attribution survives wrap-around" 20 total.Trace.Nvtrace.ops

let test_concurrent_emit () =
  let nthreads = 4 in
  let inst = Tutil.mk ~nthreads ~size_hint:256 I.Hash I.Lc in
  Workload.Keygen.prefill inst.ops ~size:256 ~seed:3;
  let tr = Trace.Nvtrace.attach (Lfds.Ctx.heap inst.ctx) in
  let r =
    Workload.Run.throughput ~nthreads ~duration:0.05
      ~step:
        (Workload.Run.set_workload inst.ops ~mix:Workload.Keygen.update_only
           ~range:(Workload.Keygen.range_for ~size:256))
      ~seed:3 ()
  in
  Trace.Nvtrace.detach tr;
  check_int "every op became a span" r.total_ops (Trace.Nvtrace.span_count tr);
  let spans = Trace.Nvtrace.spans tr in
  let tids = List.sort_uniq compare (List.map (fun s -> s.Trace.Nvtrace.tid) spans) in
  check_bool "spans from several domains" true (List.length tids >= 2);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Trace.Nvtrace.start_ns <= b.Trace.Nvtrace.start_ns && sorted rest
    | _ -> true
  in
  check_bool "merged oldest-first" true (sorted spans);
  let hist_total =
    List.fold_left
      (fun acc (_, h) -> acc + Workload.Histogram.count h)
      0 (Trace.Nvtrace.histograms tr)
  in
  check_int "histograms cover every op" r.total_ops hist_total

(* Drain the ring into Chrome JSON while the tracer is still attached, keep
   working, drain again: both documents must parse and the second must see
   the later spans. *)
let test_drain_while_tracing () =
  let inst = Tutil.mk I.Bst I.Lp in
  let tr = Trace.Nvtrace.attach (Lfds.Ctx.heap inst.ctx) in
  for k = 1 to 50 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  let drain () =
    let b = Trace.Chrome_trace.create () in
    Trace.Chrome_trace.add_process b ~pid:0 ~name:"drain-test";
    Trace.Chrome_trace.add_spans b ~pid:0 (Trace.Nvtrace.spans tr);
    (Trace.Chrome_trace.event_count b, Json.parse (Trace.Chrome_trace.contents b))
  in
  let n1, doc1 = drain () in
  check_int "metadata + 50 spans" 51 n1;
  for k = 51 to 80 do
    ignore (inst.ops.insert ~tid:0 ~key:k ~value:k)
  done;
  let n2, doc2 = drain () in
  Trace.Nvtrace.detach tr;
  check_int "second drain sees new spans" 81 n2;
  let events doc = Json.(to_list (member "traceEvents" doc)) in
  check_int "doc1 round-trips" n1 (List.length (events doc1));
  check_int "doc2 round-trips" n2 (List.length (events doc2));
  (* Spot-check the Chrome fields tracing UIs rely on. *)
  let x =
    List.find (fun e -> Json.(to_string (member "ph" e)) = "X") (events doc2)
  in
  check_string "span name is the op label" "bst.insert"
    Json.(to_string (member "name" x));
  List.iter
    (fun k -> ignore (Json.member k x))
    [ "ts"; "dur"; "pid"; "tid"; "args" ]

(* The acceptance invariant: per-span persistence costs, summed, equal the
   heap's aggregate Pstats over the traced window (tolerance 1%; the
   counter-diff design makes them exact when every event is bracketed). *)
let test_attribution_sums_to_aggregate () =
  let inst = Tutil.mk ~size_hint:512 I.Hash I.Lc in
  let heap = Lfds.Ctx.heap inst.ctx in
  Workload.Keygen.prefill inst.ops ~size:512 ~seed:5;
  Nvm.Heap.reset_stats heap;
  let tr = Trace.Nvtrace.attach heap in
  let rng = Workload.Xoshiro.make ~seed:5 in
  for _ = 1 to 3000 do
    let key = Workload.Xoshiro.in_range rng ~lo:1 ~hi:1024 in
    if Workload.Xoshiro.chance rng ~num:1 ~den:2 then
      ignore (inst.ops.insert ~tid:0 ~key ~value:key)
    else ignore (inst.ops.remove ~tid:0 ~key)
  done;
  Trace.Nvtrace.detach tr;
  let agg = Nvm.Heap.aggregate_stats heap in
  let t = Trace.Nvtrace.total_attribution tr in
  let close name got want =
    let slack = max 1 (want / 100) in
    if abs (got - want) > slack then
      Alcotest.failf "%s: attributed %d vs aggregate %d" name got want
  in
  let open Trace.Nvtrace in
  close "write_backs" t.a_write_backs agg.write_backs;
  close "fences" t.a_fences agg.fences;
  close "sync_batches" t.a_sync_batches agg.sync_batches;
  close "lines_drained" t.a_lines_drained agg.lines_drained;
  close "lc_adds" t.a_lc_adds agg.lc_adds;
  check_int "span total" 3000 t.ops

let test_ring_size_validation () =
  let h = mk_heap () in
  Alcotest.check_raises "zero ring" (Invalid_argument "Nvtrace.attach: ring_size") (fun () ->
      ignore (Trace.Nvtrace.attach ~ring_size:0 h));
  let tr = Trace.Nvtrace.attach ~ring_size:4 h in
  check_int "ring size stored" 4 (Trace.Nvtrace.ring_size tr);
  Trace.Nvtrace.detach tr;
  Trace.Nvtrace.detach tr;
  (* idempotent *)
  check_int "observer gone" 0 (Nvm.Heap.Observer.count h)

(* --- interval differs (Metrics.hist_delta / kv_delta) --- *)

(* Exact-reference cross-domain interval: snapshot the merged histogram
   view, let every domain contribute a known op count, snapshot again — the
   delta must cover all domains' samples, not just domain 0's. *)
let test_hist_delta_cross_domain () =
  let nthreads = 4 in
  let inst = Tutil.mk ~nthreads ~size_hint:256 I.Hash I.Lc in
  let tr = Trace.Nvtrace.attach (Lfds.Ctx.heap inst.ctx) in
  let older = Trace.Metrics.hist_sample tr in
  let per = 500 in
  let doms =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for k = 1 to per do
              ignore (inst.ops.insert ~tid ~key:((tid * per) + k) ~value:k)
            done))
  in
  List.iter Domain.join doms;
  let newer = Trace.Metrics.hist_sample tr in
  Trace.Nvtrace.detach tr;
  let d, dt = Trace.Metrics.hist_delta ~older ~newer in
  check_bool "elapsed non-negative" true (dt >= 0.);
  let total =
    List.fold_left (fun acc (_, h) -> acc + Workload.Histogram.count h) 0 d
  in
  check_int "interval covers every domain's ops" (nthreads * per) total;
  (* Snapshots are frozen copies: an interval over an unchanged tracer is
     empty, and re-diffing the same pair is stable. *)
  let d2, _ =
    Trace.Metrics.hist_delta ~older:newer ~newer:(Trace.Metrics.hist_sample tr)
  in
  let total2 =
    List.fold_left (fun acc (_, h) -> acc + Workload.Histogram.count h) 0 d2
  in
  check_int "quiet interval is empty" 0 total2;
  let d3, _ = Trace.Metrics.hist_delta ~older ~newer in
  let total3 =
    List.fold_left (fun acc (_, h) -> acc + Workload.Histogram.count h) 0 d3
  in
  check_int "re-diffing the same pair is stable" (nthreads * per) total3

let test_kv_delta () =
  let older =
    Trace.Metrics.kv_sample
      [ ("requests", "100"); ("mode", "lp"); ("gone", "5"); ("p50", "1.5") ]
  in
  let newer =
    Trace.Metrics.kv_sample
      [ ("requests", "250"); ("mode", "lp"); ("fresh", "7"); ("p50", "2.0") ]
  in
  let d, _dt = Trace.Metrics.kv_delta ~older ~newer in
  (match d with
  | [ ("requests", dr); ("fresh", df); ("p50", dp) ] ->
      Alcotest.(check (float 1e-9)) "counter increment" 150. dr;
      Alcotest.(check (float 1e-9)) "key new to newer counts from zero" 7. df;
      Alcotest.(check (float 1e-9)) "float values diff too" 0.5 dp
  | _ ->
      Alcotest.failf "unexpected delta shape: %s"
        (String.concat ";" (List.map fst d)));
  (* Non-numeric values are skipped; keys gone from newer are dropped. *)
  check_bool "mode skipped" true (not (List.mem_assoc "mode" d));
  check_bool "gone dropped" true (not (List.mem_assoc "gone" d))

let () =
  Alcotest.run "trace"
    [
      ( "observer",
        [
          Alcotest.test_case "fanout add/remove" `Quick test_observer_fanout;
          Alcotest.test_case "attach order" `Quick test_observer_order;
          Alcotest.test_case "nvsan coexists" `Quick test_nvsan_coexists;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "concurrent emit" `Quick test_concurrent_emit;
          Alcotest.test_case "drain while tracing" `Quick test_drain_while_tracing;
          Alcotest.test_case "ring size validation" `Quick test_ring_size_validation;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "sums to aggregate" `Quick
            test_attribution_sums_to_aggregate;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "hist delta merges all domains" `Quick
            test_hist_delta_cross_domain;
          Alcotest.test_case "kv delta" `Quick test_kv_delta;
        ] );
    ]
