(* NV-Memcached and its pieces: string packing, LRU, items, the three cache
   builds, eviction, and crash recovery. *)

module I = Harness.Instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_opt = Alcotest.(check (option string))

(* --- Strpack --- *)

let test_strpack_roundtrip () =
  let heap = Nvm.Heap.create ~size_words:1024 () in
  List.iter
    (fun s ->
      Kvcache.Strpack.write heap ~tid:0 ~addr:100 s;
      Alcotest.(check string) "roundtrip" s
        (Kvcache.Strpack.read heap ~tid:0 ~addr:100 ~len:(String.length s)))
    [ ""; "a"; "abcdefg"; "abcdefgh"; "the quick brown fox jumps over"; "\x00\xff\x7f" ]

let prop_strpack =
  QCheck.Test.make ~name:"strpack roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s ->
      let heap = Nvm.Heap.create ~size_words:1024 () in
      Kvcache.Strpack.write heap ~tid:0 ~addr:64 s;
      Kvcache.Strpack.read heap ~tid:0 ~addr:64 ~len:(String.length s) = s)

let test_strpack_hash_stable_and_positive () =
  check_int "deterministic" (Kvcache.Strpack.hash "hello") (Kvcache.Strpack.hash "hello");
  check_bool "positive" true (Kvcache.Strpack.hash "x" > 0);
  check_bool "distinct strings differ" true
    (Kvcache.Strpack.hash "hello" <> Kvcache.Strpack.hash "world")

(* --- LRU --- *)

let test_lru_order () =
  let l = Kvcache.Lru.create () in
  Kvcache.Lru.add l 8;
  Kvcache.Lru.add l 16;
  Kvcache.Lru.add l 24;
  Alcotest.(check (option int)) "oldest first" (Some 8) (Kvcache.Lru.pop_lru l);
  Kvcache.Lru.touch l 16;
  Alcotest.(check (option int)) "24 now oldest" (Some 24) (Kvcache.Lru.pop_lru l);
  Alcotest.(check (option int)) "16 last" (Some 16) (Kvcache.Lru.pop_lru l);
  Alcotest.(check (option int)) "empty" None (Kvcache.Lru.pop_lru l)

let test_lru_remove () =
  let l = Kvcache.Lru.create () in
  Kvcache.Lru.add l 8;
  Kvcache.Lru.add l 16;
  Kvcache.Lru.remove l 8;
  check_int "length" 1 (Kvcache.Lru.length l);
  Alcotest.(check (option int)) "16 remains" (Some 16) (Kvcache.Lru.pop_lru l)

(* --- Item --- *)

let mk_ctx () =
  Lfds.Ctx.create
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 19;
      nthreads = 2;
      apt_entries = 1024;
    }

let test_item_roundtrip () =
  let ctx = mk_ctx () in
  Lfds.Nv_epochs.op_begin (Lfds.Ctx.mem ctx) ~tid:0;
  let item, _ = Kvcache.Item.alloc ctx ~tid:0 ~key:"user:42" ~value:"Alice Smith" in
  Lfds.Nv_epochs.op_end (Lfds.Ctx.mem ctx) ~tid:0;
  Alcotest.(check string) "key" "user:42" (Kvcache.Item.read_key ctx ~tid:0 item);
  Alcotest.(check string) "value" "Alice Smith" (Kvcache.Item.read_value ctx ~tid:0 item);
  check_bool "match" true (Kvcache.Item.key_matches ctx ~tid:0 item "user:42");
  check_bool "mismatch" false (Kvcache.Item.key_matches ctx ~tid:0 item "user:43")

let test_item_too_large () =
  let ctx = mk_ctx () in
  Lfds.Nv_epochs.op_begin (Lfds.Ctx.mem ctx) ~tid:0;
  (try
     ignore (Kvcache.Item.alloc ctx ~tid:0 ~key:"k" ~value:(String.make 600 'x'));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Lfds.Nv_epochs.op_end (Lfds.Ctx.mem ctx) ~tid:0

(* --- Cache builds --- *)

let mk_nv ?(capacity = 1000) () =
  let cfg =
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 20;
      nthreads = 2;
      apt_entries = 4096;
      static_words = 1 lsl 15;
    }
  in
  let ctx = Lfds.Ctx.create cfg in
  (cfg, ctx, Kvcache.Nv_memcached.create ctx ~nbuckets:256 ~capacity)

let test_nv_set_get_delete () =
  let _, _, c = mk_nv () in
  let ops = Kvcache.Nv_memcached.ops c in
  ops.set ~tid:0 ~key:"a" ~value:"1";
  ops.set ~tid:0 ~key:"b" ~value:"2";
  check_str_opt "get a" (Some "1") (ops.get ~tid:0 ~key:"a");
  check_str_opt "get missing" None (ops.get ~tid:0 ~key:"zz");
  ops.set ~tid:0 ~key:"a" ~value:"updated";
  check_str_opt "overwrite" (Some "updated") (ops.get ~tid:0 ~key:"a");
  check_int "count" 2 (ops.count ());
  check_bool "delete" true (ops.delete ~tid:0 ~key:"a");
  check_bool "delete gone" false (ops.delete ~tid:0 ~key:"a");
  check_str_opt "deleted" None (ops.get ~tid:0 ~key:"a")

let test_nv_eviction () =
  let _, _, c = mk_nv ~capacity:10 () in
  let ops = Kvcache.Nv_memcached.ops c in
  for i = 1 to 25 do
    ops.set ~tid:0 ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
  done;
  check_bool "capacity respected" true (ops.count () <= 10);
  (* The most recent keys survive. *)
  check_str_opt "newest present" (Some "25") (ops.get ~tid:0 ~key:"k25");
  check_str_opt "oldest evicted" None (ops.get ~tid:0 ~key:"k1")

let test_nv_lru_protects_hot_keys () =
  let _, _, c = mk_nv ~capacity:5 () in
  let ops = Kvcache.Nv_memcached.ops c in
  for i = 1 to 5 do
    ops.set ~tid:0 ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
  done;
  (* Keep k1 hot while inserting more. *)
  for i = 6 to 8 do
    ignore (ops.get ~tid:0 ~key:"k1");
    ops.set ~tid:0 ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
  done;
  check_str_opt "hot key kept" (Some "1") (ops.get ~tid:0 ~key:"k1")

let test_nv_crash_recovery () =
  let cfg, ctx, c = mk_nv () in
  let ops = Kvcache.Nv_memcached.ops c in
  for i = 1 to 200 do
    ops.set ~tid:0 ~key:(Printf.sprintf "key-%04d" i) ~value:(Printf.sprintf "val-%d" i)
  done;
  ignore (ops.delete ~tid:0 ~key:"key-0007");
  Nvm.Heap.crash (Lfds.Ctx.heap ctx) ~seed:21 ~eviction_probability:0.5;
  let ctx', active = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) cfg in
  let c' =
    Kvcache.Nv_memcached.recover ctx' ~nbuckets:256 ~capacity:1000
      ~active_pages:active
  in
  let ops' = Kvcache.Nv_memcached.ops c' in
  check_int "count recovered" 199 (ops'.count ());
  check_str_opt "value intact" (Some "val-42") (ops'.get ~tid:0 ~key:"key-0042");
  check_str_opt "delete stuck" None (ops'.get ~tid:0 ~key:"key-0007");
  (* Recovered cache still evicts and serves. *)
  ops'.set ~tid:0 ~key:"after" ~value:"crash";
  check_str_opt "post-recovery set" (Some "crash") (ops'.get ~tid:0 ~key:"after")

let test_volatile_memcached () =
  let c = Kvcache.Memcached_volatile.create ~capacity:3 in
  let ops = Kvcache.Memcached_volatile.ops c in
  ops.set ~tid:0 ~key:"a" ~value:"1";
  ops.set ~tid:0 ~key:"b" ~value:"2";
  ops.set ~tid:0 ~key:"c" ~value:"3";
  ignore (ops.get ~tid:0 ~key:"a");
  ops.set ~tid:0 ~key:"d" ~value:"4";
  check_int "capacity" 3 (ops.count ());
  check_str_opt "LRU evicted b" None (ops.get ~tid:0 ~key:"b");
  check_str_opt "hot a kept" (Some "1") (ops.get ~tid:0 ~key:"a");
  check_bool "delete" true (ops.delete ~tid:0 ~key:"a")

(* --- TTL / incr --- *)

let test_ttl_expiry () =
  let _, _, c = mk_nv () in
  let ops = Kvcache.Nv_memcached.ops c in
  let now = Unix.gettimeofday () in
  ops.set_ttl ~tid:0 ~key:"ephemeral" ~value:"x" ~expire_at:(now -. 1.);
  ops.set_ttl ~tid:0 ~key:"later" ~value:"y" ~expire_at:(now +. 3600.);
  ops.set ~tid:0 ~key:"forever" ~value:"z";
  check_str_opt "already expired" None (ops.get ~tid:0 ~key:"ephemeral");
  check_str_opt "not yet expired" (Some "y") (ops.get ~tid:0 ~key:"later");
  check_str_opt "no ttl" (Some "z") (ops.get ~tid:0 ~key:"forever")

let test_ttl_survives_crash () =
  let cfg, ctx, c = mk_nv () in
  let ops = Kvcache.Nv_memcached.ops c in
  let now = Unix.gettimeofday () in
  ops.set_ttl ~tid:0 ~key:"dead" ~value:"x" ~expire_at:(now -. 1.);
  ops.set_ttl ~tid:0 ~key:"alive" ~value:"y" ~expire_at:(now +. 3600.);
  Nvm.Heap.crash (Lfds.Ctx.heap ctx) ~seed:2 ~eviction_probability:0.5;
  let ctx', active = Lfds.Ctx.recover (Lfds.Ctx.heap ctx) cfg in
  let c' =
    Kvcache.Nv_memcached.recover ctx' ~nbuckets:256 ~capacity:1000
      ~active_pages:active
  in
  let ops' = Kvcache.Nv_memcached.ops c' in
  check_str_opt "expiry is durable" None (ops'.get ~tid:0 ~key:"dead");
  check_str_opt "live item durable" (Some "y") (ops'.get ~tid:0 ~key:"alive")

let test_incr_decr () =
  let _, _, c = mk_nv () in
  let ops = Kvcache.Nv_memcached.ops c in
  ops.set ~tid:0 ~key:"n" ~value:"10";
  Alcotest.(check (option int)) "incr" (Some 13) (ops.incr ~tid:0 ~key:"n" ~delta:3);
  Alcotest.(check (option int)) "decr" (Some 8) (ops.incr ~tid:0 ~key:"n" ~delta:(-5));
  Alcotest.(check (option int)) "decr clamps at 0" (Some 0)
    (ops.incr ~tid:0 ~key:"n" ~delta:(-100));
  Alcotest.(check (option int)) "missing key" None (ops.incr ~tid:0 ~key:"zz" ~delta:1);
  ops.set ~tid:0 ~key:"s" ~value:"hello";
  Alcotest.(check (option int)) "non-numeric" None (ops.incr ~tid:0 ~key:"s" ~delta:1)

(* --- Text protocol --- *)

let mk_proto () =
  let _, _, c = mk_nv () in
  Kvcache.Protocol.create (Kvcache.Nv_memcached.ops c)

let check_resp p req expected =
  Alcotest.(check string) req expected (Kvcache.Protocol.handle p ~tid:0 req)

let test_protocol_set_get () =
  let p = mk_proto () in
  check_resp p "set greeting 0 0 5\r\nhello\r\n" "STORED\r\n";
  check_resp p "get greeting" "VALUE greeting 0 5\r\nhello\r\nEND\r\n";
  check_resp p "get missing" "END\r\n"

let test_protocol_multi_get () =
  let p = mk_proto () in
  check_resp p "set a 0 0 1\r\nx\r\n" "STORED\r\n";
  check_resp p "set b 0 0 1\r\ny\r\n" "STORED\r\n";
  check_resp p "get a b zz" "VALUE a 0 1\r\nx\r\nVALUE b 0 1\r\ny\r\nEND\r\n"

let test_protocol_add_replace () =
  let p = mk_proto () in
  check_resp p "add k 0 0 1\r\na\r\n" "STORED\r\n";
  check_resp p "add k 0 0 1\r\nb\r\n" "NOT_STORED\r\n";
  check_resp p "replace k 0 0 1\r\nc\r\n" "STORED\r\n";
  check_resp p "replace zz 0 0 1\r\nd\r\n" "NOT_STORED\r\n";
  check_resp p "get k" "VALUE k 0 1\r\nc\r\nEND\r\n"

let test_protocol_append_prepend () =
  let p = mk_proto () in
  check_resp p "set k 0 0 3\r\nbbb\r\n" "STORED\r\n";
  check_resp p "append k 0 0 1\r\nc\r\n" "STORED\r\n";
  check_resp p "prepend k 0 0 1\r\na\r\n" "STORED\r\n";
  check_resp p "get k" "VALUE k 0 5\r\nabbbc\r\nEND\r\n"

let test_protocol_delete_incr () =
  let p = mk_proto () in
  check_resp p "set n 0 0 2\r\n41\r\n" "STORED\r\n";
  check_resp p "incr n 1" "42\r\n";
  check_resp p "decr n 2" "40\r\n";
  check_resp p "delete n" "DELETED\r\n";
  check_resp p "delete n" "NOT_FOUND\r\n";
  check_resp p "incr n 1" "NOT_FOUND\r\n"

let test_protocol_errors () =
  let p = mk_proto () in
  check_resp p "bogus" "ERROR\r\n";
  check_resp p "set missing args" "ERROR\r\n";
  check_resp p "set k 0 0 notanumber\r\nxx\r\n"
    "CLIENT_ERROR bad command line format\r\n";
  check_resp p "set k 0 0 10\r\nshort\r\n" "CLIENT_ERROR bad data chunk\r\n";
  check_resp p "incr k abc" "CLIENT_ERROR invalid numeric delta argument\r\n"

(* Framing-hostile inputs must answer with error lines, never raise: the
   NVServe workers feed [handle] straight off the wire. *)
let test_protocol_negative () =
  let p = mk_proto () in
  (* Oversized value: frames fine, exceeds the item layout limit. *)
  let big = String.make 500 'x' in
  check_resp p
    (Printf.sprintf "set k 0 0 %d\r\n%s\r\n" (String.length big) big)
    "SERVER_ERROR object too large for cache\r\n";
  (* Exact-length data block with a bad terminator. *)
  check_resp p "set k 0 0 3\r\nabcJUNK" "CLIENT_ERROR bad data chunk\r\n";
  (* Declared length can't be negative. *)
  check_resp p "set k 0 0 -1\r\n\r\n" "CLIENT_ERROR bad command line format\r\n";
  (* Unknown command. *)
  check_resp p "frobnicate k 1 2\r\n" "ERROR\r\n";
  (* Oversized append onto an existing small value. *)
  check_resp p "set k 0 0 2\r\nok\r\n" "STORED\r\n";
  check_resp p
    (Printf.sprintf "append k 0 0 %d\r\n%s\r\n" (String.length big) big)
    "SERVER_ERROR object too large for cache\r\n";
  check_resp p "get k\r\n" "VALUE k 0 2\r\nok\r\nEND\r\n"

let test_protocol_misc () =
  let p = mk_proto () in
  check_resp p "version" "VERSION nvlf-0.1\r\n";
  check_resp p "verbosity 1" "OK\r\n";
  let stats = Kvcache.Protocol.handle p ~tid:0 "stats" in
  check_bool "stats mentions backend" true
    (String.length stats > 0
    && String.sub stats 0 4 = "STAT");
  let responses =
    Kvcache.Protocol.session p ~tid:0 [ "set a 0 0 1\r\nx\r\n"; "get a" ]
  in
  check_int "session responses" 2 (List.length responses)

let test_memtier_generator () =
  let c = Kvcache.Memcached_volatile.create ~capacity:10_000 in
  let ops = Kvcache.Memcached_volatile.ops c in
  let dt = Kvcache.Memtier.warmup ops ~nkeys:100 in
  check_bool "warmup timed" true (dt >= 0.);
  check_int "warmup stored half the range" 50 (ops.count ());
  let r = Kvcache.Memtier.run ops ~nthreads:2 ~duration:0.05 ~nkeys:100 ~seed:1 () in
  check_bool "ran some ops" true (r.total_ops > 0)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kvcache"
    [
      ( "strpack",
        [
          Alcotest.test_case "roundtrip" `Quick test_strpack_roundtrip;
          Alcotest.test_case "hash" `Quick test_strpack_hash_stable_and_positive;
          qt prop_strpack;
        ] );
      ( "lru",
        [
          Alcotest.test_case "order" `Quick test_lru_order;
          Alcotest.test_case "remove" `Quick test_lru_remove;
        ] );
      ( "item",
        [
          Alcotest.test_case "roundtrip" `Quick test_item_roundtrip;
          Alcotest.test_case "size limit" `Quick test_item_too_large;
        ] );
      ( "nv-memcached",
        [
          Alcotest.test_case "set/get/delete" `Quick test_nv_set_get_delete;
          Alcotest.test_case "eviction" `Quick test_nv_eviction;
          Alcotest.test_case "LRU hot keys" `Quick test_nv_lru_protects_hot_keys;
          Alcotest.test_case "crash recovery" `Quick test_nv_crash_recovery;
        ] );
      ( "ttl+incr",
        [
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "ttl durable" `Quick test_ttl_survives_crash;
          Alcotest.test_case "incr/decr" `Quick test_incr_decr;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "set/get" `Quick test_protocol_set_get;
          Alcotest.test_case "multi-get" `Quick test_protocol_multi_get;
          Alcotest.test_case "add/replace" `Quick test_protocol_add_replace;
          Alcotest.test_case "append/prepend" `Quick test_protocol_append_prepend;
          Alcotest.test_case "delete/incr" `Quick test_protocol_delete_incr;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
          Alcotest.test_case "negative" `Quick test_protocol_negative;
          Alcotest.test_case "misc" `Quick test_protocol_misc;
        ] );
      ( "volatile+memtier",
        [
          Alcotest.test_case "volatile memcached" `Quick test_volatile_memcached;
          Alcotest.test_case "memtier" `Quick test_memtier_generator;
        ] );
    ]
