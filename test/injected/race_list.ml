(** Race-injection corpus: a two-thread sorted-list scenario that follows
    the durable-list protocol {e except} for one deliberately racy step.
    The interleaving is deterministic — both logical threads run from the
    test's single OS thread, so NVRace's verdict is reproducible — yet each
    variant is a real race: the same access pair under a real scheduler
    could overlap.

    Both variants warm each logical thread up with a faithful operation
    first, so the detector's thread-start bootstrap join (which
    over-approximates the untracked [Domain.spawn] edge) lands {e before}
    the racy section and cannot mask it.

    Never use outside the sanitizer regression tests and the CLI's
    [sanitize --races] gate. *)

open Nvm
open Lfds

type race =
  | Unfenced_publish
      (** publish a new node with a plain store instead of a CAS: another
          thread's traversal loads the link — and the node's fields —
          with no release edge ordering the initialization before them *)
  | Skip_revalidation
      (** a remove that marks its victim, then swings the predecessor link
          with an unconditional plain store instead of re-validating with
          a CAS — unordered against a concurrent traversal's reads *)

let race_name = function
  | Unfenced_publish -> "unfenced-publish"
  | Skip_revalidation -> "skip-revalidation"

let all_races = [ Unfenced_publish; Skip_revalidation ]

(** The violation class NVRace must produce. [Unfenced_publish] is caught
    at the reader ([racy-load]: an acquire load observes an unordered plain
    store); [Skip_revalidation] at the writer ([racy-store]: a plain store
    conflicts with an unordered prior read). *)
let expected_code = function
  | Unfenced_publish -> "racy-load"
  | Skip_revalidation -> "racy-store"

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let next_of node = node + 2

let find cu ~head k =
  let rec step link =
    let curr = Marked_ptr.addr (Heap.Cursor.load cu link) in
    if curr = 0 then (link, 0)
    else if Heap.Cursor.load cu (key_of curr) >= k then (link, curr)
    else step (next_of curr)
  in
  step head

let search_c cu ~head ~key =
  let _, curr = find cu ~head key in
  if curr <> 0 && Heap.Cursor.load cu (key_of curr) = key then
    Some (Heap.Cursor.load cu (value_of curr))
  else None

(** Faithful insert: init, persist, publish with the protocol CAS. With
    [racy:true], publish with a plain store instead. *)
let insert_c ctx cu ?(racy = false) ~head ~key ~value () =
  let link, curr = find cu ~head key in
  if curr <> 0 && Heap.Cursor.load cu (key_of curr) = key then false
  else begin
    let node = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
    Heap.Cursor.store cu (key_of node) key;
    Heap.Cursor.store cu (value_of node) value;
    Heap.Cursor.store cu (next_of node) curr;
    Link_persist.persist_node_c ctx cu ~addr:node ~size_class;
    if racy then Heap.Cursor.store cu link node
    else
      ignore
        (Link_persist.cas_link_c ctx cu ~key ~link ~expected:curr
           ~desired:node);
    true
  end

(** The skip-revalidation remove: durably mark the victim's next pointer
    (faithful), then swing the predecessor link with an unconditional plain
    store where the protocol demands a re-validating CAS. The node is
    deliberately leaked — retiring it would snapshot the epochs, whose
    acquire edges are not part of the bug under test. *)
let racy_remove_c ctx cu ~head ~key () =
  let link, curr = find cu ~head key in
  if curr = 0 || Heap.Cursor.load cu (key_of curr) <> key then false
  else begin
    let nv = Heap.Cursor.load cu (next_of curr) in
    ignore
      (Link_persist.cas_link_c ctx cu ~key ~link:(next_of curr) ~expected:nv
         ~desired:(Marked_ptr.with_delete nv));
    Heap.Cursor.store cu link (Marked_ptr.addr nv);
    true
  end

(** Run the scenario on a fresh context built with [nthreads >= 2]. Lists
    hang off root slots 0 (the contended one) and 1 (thread 1's private
    warm-up list, so [Unfenced_publish] keeps thread 1's reads off the
    contended link until the racy load itself). *)
let run_scenario ctx race =
  let head0 = Ctx.root_slot ctx 0 in
  let head1 = Ctx.root_slot ctx 1 in
  let cu0 = Ctx.cursor ctx ~tid:0 in
  let cu1 = Ctx.cursor ctx ~tid:1 in
  let op cu name f = Ctx.with_op_c ~name ctx cu f in
  match race with
  | Unfenced_publish ->
      ignore
        (op cu0 "race.insert" (fun cu ->
             insert_c ctx cu ~head:head0 ~key:30 ~value:300 ()));
      ignore
        (op cu1 "race.insert" (fun cu ->
             insert_c ctx cu ~head:head1 ~key:50 ~value:500 ()));
      ignore
        (op cu0 "race.insert" (fun cu ->
             insert_c ctx cu ~racy:true ~head:head0 ~key:10 ~value:100 ()));
      ignore (op cu1 "race.search" (fun cu -> search_c cu ~head:head0 ~key:10))
  | Skip_revalidation ->
      ignore
        (op cu0 "race.insert" (fun cu ->
             insert_c ctx cu ~head:head0 ~key:10 ~value:100 ()));
      ignore
        (op cu0 "race.insert" (fun cu ->
             insert_c ctx cu ~head:head0 ~key:20 ~value:200 ()));
      ignore (op cu1 "race.search" (fun cu -> search_c cu ~head:head0 ~key:20));
      ignore
        (op cu0 "race.remove" (fun cu -> racy_remove_c ctx cu ~head:head0 ~key:10 ()))
