(** Bug-injection corpus: a single-threaded sorted list that follows the
    durable-list protocol {e except} for one chosen, deliberately wrong
    step. Each [bug] variant reproduces a real crash-consistency mistake a
    programmer could make against the link-and-persist discipline; NVSan
    must flag every one with the right violation class. The list shares the
    real node layout and drives the real allocator / epoch machinery so the
    sanitizer sees authentic annotations.

    Never use outside the sanitizer regression tests. *)

open Nvm
open Lfds

type bug =
  | Drop_write_back  (** publish a node whose lines were never written back *)
  | Skip_fence  (** write the node back but never await the write-back *)
  | Plain_cas  (** publish with an unmarked CAS (no link-and-persist mark) *)
  | Clear_without_persist
      (** marked publish, mark cleared with no persist in between *)
  | Leave_marked  (** marked publish, mark never cleared nor persisted *)
  | Early_free  (** durably unlink, then free with no grace period *)
  | Free_reachable  (** free the node while the list still points at it *)

let bug_name = function
  | Drop_write_back -> "drop-write-back"
  | Skip_fence -> "skip-fence"
  | Plain_cas -> "plain-cas"
  | Clear_without_persist -> "clear-without-persist"
  | Leave_marked -> "leave-marked"
  | Early_free -> "early-free"
  | Free_reachable -> "free-reachable"

let all_bugs =
  [
    Drop_write_back;
    Skip_fence;
    Plain_cas;
    Clear_without_persist;
    Leave_marked;
    Early_free;
    Free_reachable;
  ]

let size_class = Cacheline.words_per_line
let key_of node = node
let value_of node = node + 1
let next_of node = node + 2

(* Single-threaded find: the link holding the first node with key >= k, and
   that node (0 if none). No helping, no marks expected on the way. *)
let find cu ~head k =
  let rec step link =
    let curr = Marked_ptr.addr (Heap.Cursor.load cu link) in
    if curr = 0 then (link, 0)
    else if Heap.Cursor.load cu (key_of curr) >= k then (link, curr)
    else step (next_of curr)
  in
  step head

let search_c cu ~head ~key =
  let _, curr = find cu ~head key in
  if curr <> 0 && Heap.Cursor.load cu (key_of curr) = key then
    Some (Heap.Cursor.load cu (value_of curr))
  else None

(** Insert following the real protocol, except where [bug] says otherwise.
    [bug = None] is the faithful path. *)
let insert_c ctx cu ?bug ~head ~key ~value () =
  let link, curr = find cu ~head key in
  if curr <> 0 && Heap.Cursor.load cu (key_of curr) = key then false
  else begin
    let node = Nv_epochs.alloc_node_c (Ctx.mem ctx) cu ~size_class in
    Heap.Cursor.store cu (key_of node) key;
    Heap.Cursor.store cu (value_of node) value;
    Heap.Cursor.store cu (next_of node) curr;
    (match bug with
    | Some Drop_write_back -> ()
    | Some Skip_fence -> Heap.Cursor.write_back cu node
    | _ -> Link_persist.persist_node_c ctx cu ~addr:node ~size_class);
    (match bug with
    | Some Plain_cas -> ignore (Heap.Cursor.cas cu link ~expected:curr ~desired:node)
    | Some Leave_marked ->
        ignore
          (Heap.Cursor.cas cu link ~expected:curr
             ~desired:(Marked_ptr.with_unflushed node))
    | Some Clear_without_persist ->
        let marked = Marked_ptr.with_unflushed node in
        ignore (Heap.Cursor.cas cu link ~expected:curr ~desired:marked);
        ignore (Heap.Cursor.cas cu link ~expected:marked ~desired:node)
    | _ ->
        ignore
          (Link_persist.cas_link_c ctx cu ~key ~link ~expected:curr
             ~desired:node));
    true
  end

(** Remove following the real protocol (durable mark, unlink, retire),
    except where [bug] says otherwise. *)
let remove_c ctx cu ?bug ~head ~key () =
  let link, curr = find cu ~head key in
  if curr = 0 || Heap.Cursor.load cu (key_of curr) <> key then false
  else begin
    (match bug with
    | Some Free_reachable ->
        (* "Forgot" the unlink entirely: pred still points at the corpse. *)
        Nvalloc.free_c (Ctx.allocator ctx) cu curr
    | Some Early_free ->
        let nv = Heap.Cursor.load cu (next_of curr) in
        ignore
          (Link_persist.cas_link_c ctx cu ~key ~link:(next_of curr)
             ~expected:nv ~desired:(Marked_ptr.with_delete nv));
        ignore
          (Link_persist.cas_link_c ctx cu ~key ~link ~expected:curr
             ~desired:(Marked_ptr.addr nv));
        (* No retire, no grace period: straight back to the allocator. *)
        Nvalloc.free_c (Ctx.allocator ctx) cu curr
    | _ ->
        let nv = Heap.Cursor.load cu (next_of curr) in
        ignore
          (Link_persist.cas_link_c ctx cu ~key ~link:(next_of curr)
             ~expected:nv ~desired:(Marked_ptr.with_delete nv));
        ignore
          (Link_persist.cas_link_c ctx cu ~key ~link ~expected:curr
             ~desired:(Marked_ptr.addr nv));
        Nv_epochs.retire_node_c (Ctx.mem ctx) cu curr);
    true
  end

(** Run the scenario exercising [bug] on a fresh context: a few faithful
    operations for setup, the buggy one in the middle, and a traversal after
    (the deref checkers need a subsequent reader). The list hangs off root
    slot 0. *)
let run_scenario ctx bug =
  let head = Ctx.root_slot ctx 0 in
  let cu = Ctx.cursor ctx ~tid:0 in
  let op name f = Ctx.with_op_c ~name ctx cu f in
  match bug with
  | Drop_write_back | Skip_fence | Plain_cas | Clear_without_persist
  | Leave_marked ->
      ignore
        (op "bad.insert" (fun cu ->
             insert_c ctx cu ~head ~key:30 ~value:300 ()));
      ignore
        (op "bad.insert" (fun cu ->
             insert_c ctx cu ~bug ~head ~key:10 ~value:100 ()));
      ignore (op "bad.search" (fun cu -> search_c cu ~head ~key:10))
  | Early_free | Free_reachable ->
      ignore
        (op "bad.insert" (fun cu ->
             insert_c ctx cu ~head ~key:10 ~value:100 ()));
      ignore
        (op "bad.insert" (fun cu ->
             insert_c ctx cu ~head ~key:20 ~value:200 ()));
      ignore (op "bad.remove" (fun cu -> remove_c ctx cu ~bug ~head ~key:10 ()))

(** The violation code NVSan must produce for each bug. *)
let expected_code = function
  | Drop_write_back | Skip_fence -> "publish-unpersisted"
  | Plain_cas -> "publish-unmarked"
  | Clear_without_persist -> "clear-unsynced"
  | Leave_marked -> "deref-marked"
  | Early_free -> "free-live"
  | Free_reachable -> "free-reachable"
