(** Bug-injection corpus, reclamation variant: free retired nodes while
    another thread still sits inside the epoch it held when they were
    sealed — exactly the premature reclamation the NV-epochs grace period
    exists to prevent. Uses [Nv_epochs.free_unsafely_c], the deliberate
    grace-period bypass. NVSan must flag it as [reclaim-early].

    Never use outside the sanitizer regression tests. *)

open Lfds

(** Needs a context with [nthreads >= 2]: tid 1 parks inside an epoch while
    tid 0 retires a node and then reclaims it anyway. *)
let run_scenario ctx =
  let mem = Ctx.mem ctx in
  let head = Ctx.root_slot ctx 0 in
  let cu = Ctx.cursor ctx ~tid:0 in
  let op name f = Ctx.with_op_c ~name ctx cu f in
  ignore
    (op "reclaim.insert" (fun cu ->
         Bad_list.insert_c ctx cu ~head ~key:10 ~value:100 ()));
  (* tid 1 enters an epoch and stays there — a reader mid-traversal. *)
  Nv_epochs.op_begin mem ~tid:1;
  ignore
    (op "reclaim.remove" (fun cu -> Bad_list.remove_c ctx cu ~head ~key:10 ()));
  (* The faithful path would wait for tid 1's epoch to move; the bug frees
     the generation immediately. *)
  Nv_epochs.free_unsafely_c mem cu;
  Nv_epochs.op_end mem ~tid:1

let expected_code = "reclaim-early"
