(* NVServe: request framing, the sharded store, a real loopback server under
   concurrent load, graceful-stop durability, and the crash drill. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Framing --- *)

let next s ~pos = Server.Framing.next (Bytes.of_string s) ~pos ~len:(String.length s - pos)

let test_framing_pipelined () =
  let s = "get a\r\nget b\r\n" in
  (match next s ~pos:0 with
  | Server.Framing.Request { req; consumed } ->
      check_str "first" "get a\r\n" req;
      check_int "consumed" 7 consumed
  | _ -> Alcotest.fail "expected Request");
  match next s ~pos:7 with
  | Server.Framing.Request { req; _ } -> check_str "second" "get b\r\n" req
  | _ -> Alcotest.fail "expected Request"

let test_framing_storage_waits_for_data () =
  (match next "set k 0 0 3\r\nab" ~pos:0 with
  | Server.Framing.Need_more -> ()
  | _ -> Alcotest.fail "torn data block should wait");
  (match next "set k 0 0 3" ~pos:0 with
  | Server.Framing.Need_more -> ()
  | _ -> Alcotest.fail "torn command line should wait");
  match next "set k 0 0 3\r\nabc\r\nget k\r\n" ~pos:0 with
  | Server.Framing.Request { req; consumed } ->
      check_str "whole request" "set k 0 0 3\r\nabc\r\n" req;
      check_int "consumed" 18 consumed
  | _ -> Alcotest.fail "expected complete storage request"

let test_framing_rejects () =
  (match next "set k 0 0 zz\r\n" ~pos:0 with
  | Server.Framing.Reject { response; consumed } ->
      check_str "bad count" "CLIENT_ERROR bad command line format\r\n" response;
      check_int "line consumed" 14 consumed
  | _ -> Alcotest.fail "unparseable byte count should reject");
  (match next "set k 0 0 999999\r\n" ~pos:0 with
  | Server.Framing.Reject { response; _ } ->
      check_str "oversized" "SERVER_ERROR object too large for cache\r\n" response
  | _ -> Alcotest.fail "unbufferable data block should reject");
  (match next "set k 0 0\r\n" ~pos:0 with
  | Server.Framing.Reject { response; _ } -> check_str "arity" "ERROR\r\n" response
  | _ -> Alcotest.fail "wrong storage arity should reject");
  (* Unknown commands frame fine — the protocol layer answers them. *)
  match next "frobnicate\r\n" ~pos:0 with
  | Server.Framing.Request _ -> ()
  | _ -> Alcotest.fail "unknown command is the protocol layer's problem"

let test_framing_too_long () =
  let s = String.make Server.Framing.max_line_bytes 'a' in
  (match next s ~pos:0 with
  | Server.Framing.Too_long -> ()
  | _ -> Alcotest.fail "unterminated max-length line should be Too_long");
  match next "ab" ~pos:0 with
  | Server.Framing.Need_more -> ()
  | _ -> Alcotest.fail "short partial line should wait"

(* --- Outbuf: the reply-release queue --- *)

let test_outbuf_release_watermark () =
  let b = Server.Outbuf.create 64 in
  Server.Outbuf.add_string b "AB";
  check_int "held until released" 2 (Server.Outbuf.held b);
  check_int "nothing writable yet" 0 (Server.Outbuf.writable b);
  Server.Outbuf.release_all b;
  check_int "released" 2 (Server.Outbuf.writable b);
  check_int "no longer held" 0 (Server.Outbuf.held b);
  Server.Outbuf.add_string b "CD";
  check_int "new bytes held" 2 (Server.Outbuf.held b);
  check_int "old bytes still writable" 2 (Server.Outbuf.writable b);
  check_str "released span"
    "AB"
    (Bytes.sub_string (Server.Outbuf.bytes b) (Server.Outbuf.start b)
       (Server.Outbuf.writable b));
  Server.Outbuf.consume b 2;
  check_int "consumed" 0 (Server.Outbuf.writable b);
  check_int "held survives consume" 2 (Server.Outbuf.held b);
  (* The socket may never take held bytes. *)
  Alcotest.check_raises "consume past watermark"
    (Invalid_argument "Outbuf.consume") (fun () -> Server.Outbuf.consume b 1);
  Server.Outbuf.clear b;
  check_int "cleared" 0 (Server.Outbuf.length b)

let test_outbuf_compaction_and_growth () =
  let b = Server.Outbuf.create 64 in
  let a50 = String.make 50 'a' and b50 = String.make 50 'b' in
  Server.Outbuf.add_string b a50;
  Server.Outbuf.release_all b;
  Server.Outbuf.consume b 40;
  (* Tail is out of room but consumed space covers the append: compacts,
     preserving the unconsumed released span. *)
  Server.Outbuf.add_string b b50;
  check_int "length after compaction" 60 (Server.Outbuf.length b);
  check_str "released span survives compaction"
    (String.make 10 'a')
    (Bytes.sub_string (Server.Outbuf.bytes b) (Server.Outbuf.start b)
       (Server.Outbuf.writable b));
  Server.Outbuf.release_all b;
  (* Now the backing itself is too small: grows by doubling. *)
  Server.Outbuf.add_string b (String.make 100 'c');
  check_int "length after growth" 160 (Server.Outbuf.length b);
  Server.Outbuf.release_all b;
  check_str "contents survive growth"
    (String.make 10 'a' ^ b50 ^ String.make 100 'c')
    (Bytes.sub_string (Server.Outbuf.bytes b) (Server.Outbuf.start b)
       (Server.Outbuf.writable b));
  Server.Outbuf.consume b 160;
  check_int "drained" 0 (Server.Outbuf.length b);
  check_int "start rewinds when empty" 0 (Server.Outbuf.start b)

(* --- Shard store --- *)

let mk_ctx ?(nthreads = 2) () =
  Lfds.Ctx.create
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 20;
      nthreads;
      apt_entries = 4096;
      static_words = 1 lsl 15;
    }

let test_shard_store_ops () =
  let ctx = mk_ctx () in
  let s = Server.Shard_store.create ctx ~nshards:2 ~nbuckets:64 ~capacity:1000 in
  let ops = Server.Shard_store.ops s in
  for i = 0 to 99 do
    ops.Kvcache.Cache_intf.set ~tid:0 ~key:(Printf.sprintf "k%d" i)
      ~value:(Printf.sprintf "v%d" i)
  done;
  check_int "count" 100 (Server.Shard_store.count s);
  (* Any worker reads any shard with its own cursor. *)
  for i = 0 to 99 do
    Alcotest.(check (option string))
      "readback" (Some (Printf.sprintf "v%d" i))
      (ops.Kvcache.Cache_intf.get ~tid:1 ~key:(Printf.sprintf "k%d" i))
  done;
  check_bool "delete" true (ops.Kvcache.Cache_intf.delete ~tid:0 ~key:"k0");
  check_int "count after delete" 99 (Server.Shard_store.count s);
  (* Keys spread across both shards. *)
  let hit = Array.make 2 false in
  for i = 0 to 99 do
    hit.(Server.Shard_store.shard_of s (Printf.sprintf "k%d" i)) <- true
  done;
  check_bool "both shards used" true (hit.(0) && hit.(1))

let test_shard_store_recover () =
  let cfg =
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 20;
      nthreads = 2;
      apt_entries = 4096;
      static_words = 1 lsl 15;
    }
  in
  let ctx = Lfds.Ctx.create cfg in
  let s = Server.Shard_store.create ctx ~nshards:2 ~nbuckets:64 ~capacity:1000 in
  let ops = Server.Shard_store.ops s in
  for i = 0 to 49 do
    ops.Kvcache.Cache_intf.set ~tid:0 ~key:(Printf.sprintf "k%d" i)
      ~value:(Printf.sprintf "v%d" i)
  done;
  (* Worst-case power cut for link-and-persist: nothing survives except
     what was explicitly persisted. *)
  let heap = Lfds.Ctx.heap ctx in
  Nvm.Heap.crash ~seed:7 ~eviction_probability:0. heap;
  let ctx', active_pages = Lfds.Ctx.recover heap cfg in
  let s', _freed =
    Server.Shard_store.recover ctx' ~nshards:2 ~nbuckets:64 ~capacity:1000
      ~active_pages ~nworkers:2
  in
  let ops' = Server.Shard_store.ops s' in
  check_int "all items recovered" 50 (Server.Shard_store.count s');
  for i = 0 to 49 do
    Alcotest.(check (option string))
      "recovered value" (Some (Printf.sprintf "v%d" i))
      (ops'.Kvcache.Cache_intf.get ~tid:0 ~key:(Printf.sprintf "k%d" i))
  done;
  check_int "no leaks" 0 (Server.Shard_store.leak_count s' ~active_pages)

(* --- Group commit: the crash boundary between execution and fence --- *)

(* A power cut after a batch executed but before its covering fence may
   lose any of that batch's (unacked) mutations — and nothing from the
   committed batches before it. Worst case for link-and-persist: the crash
   evicts nothing, so only explicitly fenced lines survive. *)
let test_group_commit_crash_boundary () =
  List.iter
    (fun depth ->
      let cfg =
        {
          (Lfds.Ctx.default_config ()) with
          size_words = 1 lsl 20;
          nthreads = 2;
          apt_entries = 4096;
          static_words = 1 lsl 15;
        }
      in
      let ctx = Lfds.Ctx.create cfg in
      let s = Server.Shard_store.create ctx ~nshards:2 ~nbuckets:64 ~capacity:1000 in
      let proto = Kvcache.Protocol.create (Server.Shard_store.ops s) in
      let set_req tag i = Printf.sprintf "set %s%d 0 0 4\r\nv%03d\r\n" tag i i in
      (* Batch 1 executes and commits: every response released = acked. *)
      for i = 0 to depth - 1 do
        check_str "acked batch stored" "STORED\r\n"
          (Kvcache.Protocol.handle_deferred proto ~tid:0 (set_req "acked" i))
      done;
      Kvcache.Protocol.commit proto ~tid:0 ~ops:depth;
      (* Batch 2 executes but the covering fence never happens — in the
         server these responses would still be held in the Outbufs, so
         nothing here was ever acknowledged. *)
      for i = 0 to depth - 1 do
        ignore (Kvcache.Protocol.handle_deferred proto ~tid:0 (set_req "held" i))
      done;
      let heap = Lfds.Ctx.heap ctx in
      Nvm.Heap.crash ~seed:(41 + depth) ~eviction_probability:0. heap;
      let ctx', active_pages = Lfds.Ctx.recover heap cfg in
      let s', _freed =
        Server.Shard_store.recover ctx' ~nshards:2 ~nbuckets:64 ~capacity:1000
          ~active_pages ~nworkers:2
      in
      let ops' = Server.Shard_store.ops s' in
      for i = 0 to depth - 1 do
        Alcotest.(check (option string))
          (Printf.sprintf "depth %d: committed key %d survives" depth i)
          (Some (Printf.sprintf "v%03d" i))
          (ops'.Kvcache.Cache_intf.get ~tid:0 ~key:(Printf.sprintf "acked%d" i))
      done;
      (* Unacked keys may survive (their link line drained incidentally) or
         vanish — but a surviving value must be whole, never torn. *)
      for i = 0 to depth - 1 do
        match ops'.Kvcache.Cache_intf.get ~tid:0 ~key:(Printf.sprintf "held%d" i) with
        | None -> ()
        | Some v ->
            check_str (Printf.sprintf "depth %d: surviving unacked key %d is whole" depth i)
              (Printf.sprintf "v%03d" i) v
      done;
      check_int
        (Printf.sprintf "depth %d: no residual leaks" depth)
        0
        (Server.Shard_store.leak_count s' ~active_pages))
    [ 2; 8; 32 ]

(* NVSan (flush-order checkers, strict deref) over a batched worker: the
   deferred marks a batch leaves in place must all be exempted by their
   group-commit registration and cleared cleanly at commit. Doubles as the
   fence-accounting check: many ops per covering fence. *)
let test_group_commit_sanitized () =
  let ctx = mk_ctx () in
  let heap = Lfds.Ctx.heap ctx in
  let s = Server.Shard_store.create ctx ~nshards:2 ~nbuckets:64 ~capacity:1000 in
  let proto = Kvcache.Protocol.create (Server.Shard_store.ops s) in
  let cfg =
    {
      (Sanitizer.Nvsan.default_config ~durable:true) with
      strict_deref = true;
      root_limit = Lfds.Ctx.static_limit ctx;
    }
  in
  let san = Sanitizer.Nvsan.attach ~config:cfg heap in
  Nvm.Heap.reset_stats heap;
  let rng = Workload.Xoshiro.make ~seed:5 in
  let sets = ref 0 and batches = ref 0 in
  for _batch = 1 to 40 do
    let n = 1 + Workload.Xoshiro.below rng 16 in
    for _ = 1 to n do
      let k = Workload.Xoshiro.in_range rng ~lo:0 ~hi:63 in
      let req =
        match Workload.Xoshiro.below rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            incr sets;
            Printf.sprintf "set k%d 0 0 4\r\nabcd\r\n" k
        | 5 -> Printf.sprintf "delete k%d\r\n" k
        | _ -> Printf.sprintf "get k%d\r\n" k
      in
      ignore (Kvcache.Protocol.handle_deferred proto ~tid:0 req)
    done;
    Kvcache.Protocol.commit proto ~tid:0 ~ops:n;
    incr batches
  done;
  Sanitizer.Nvsan.detach san;
  List.iter
    (fun v ->
      Printf.printf "group-commit: %s\n%!" (Sanitizer.Nvsan.violation_to_string v))
    (Sanitizer.Nvsan.violations san);
  check_int "sanitizer violations" 0 (Sanitizer.Nvsan.violation_count san);
  let st = Nvm.Heap.aggregate_stats heap in
  check_bool "group commits happened" true (st.Nvm.Pstats.group_commits > 0);
  check_bool "links were deferred" true (st.Nvm.Pstats.deferred_links > 0);
  check_bool "many ops per covering fence" true (Nvm.Pstats.ops_per_commit st > 1.);
  (* Eager link-and-persist pays >= 2 fences per set (node persist + link
     persist); deferral must beat that. *)
  check_bool
    (Printf.sprintf "fences amortized (%d fences for %d sets in %d batches)"
       st.Nvm.Pstats.fences !sets !batches)
    true
    (st.Nvm.Pstats.fences < 2 * !sets)

(* --- Live server under concurrent load --- *)

let small_server () =
  Server.Nvserve.start
    {
      (Server.Nvserve.default_config ()) with
      Server.Nvserve.nworkers = 2;
      nbuckets = 512;
      capacity = 8_000;
      idle_timeout = 30.;
      (* Group commit on, including the cross-wakeup holding path. *)
      max_batch = 32;
      max_delay_us = 200;
    }

let test_server_concurrent_load () =
  let srv = small_server () in
  let port = Server.Nvserve.port srv in
  let acks = Server.Loadgen.make_acks () in
  let report =
    Server.Loadgen.run ~acks
      {
        (Server.Loadgen.default_config ~port) with
        Server.Loadgen.nconns = 4;
        duration = 0.4;
        nkeys = 400;
        pipeline = 4;
      }
  in
  check_bool "did work" true (report.Server.Loadgen.ops > 100);
  check_int "no validation errors" 0 report.Server.Loadgen.errors;
  check_int "no dead connections" 0 report.Server.Loadgen.dead_conns;
  check_bool "server counted requests" true
    (Server.Nvserve.requests_served srv >= report.Server.Loadgen.ops);
  check_int "four connections accepted" 4 (Server.Nvserve.connections_accepted srv);
  (* Graceful stop persists everything: a worst-case crash right after stop
     must lose nothing that was acknowledged. *)
  Server.Nvserve.stop srv;
  let heap = Lfds.Ctx.heap (Server.Nvserve.ctx srv) in
  Nvm.Heap.crash ~seed:11 ~eviction_probability:0. heap;
  let hcfg = Server.Nvserve.heap_cfg srv in
  let scfg = Server.Nvserve.config srv in
  let ctx', active_pages = Lfds.Ctx.recover heap hcfg in
  let s', _ =
    Server.Shard_store.recover ctx' ~nshards:scfg.Server.Nvserve.nworkers
      ~nbuckets:scfg.Server.Nvserve.nbuckets
      ~capacity:scfg.Server.Nvserve.capacity ~active_pages ~nworkers:2
  in
  let ops' = Server.Shard_store.ops s' in
  let lost = ref 0 in
  Hashtbl.iter
    (fun key state ->
      let got = ops'.Kvcache.Cache_intf.get ~tid:0 ~key in
      match (state, got) with
      | Server.Loadgen.Stored v, Some value ->
          let n = int_of_string (String.sub key 3 (String.length key - 3)) in
          if value <> Server.Loadgen.value_for ~n ~version:v ~value_bytes:24 then
            incr lost
      | Server.Loadgen.Stored _, None -> incr lost
      | Server.Loadgen.Deleted, None -> ()
      | Server.Loadgen.Deleted, Some _ -> incr lost)
    acks.Server.Loadgen.acked;
  check_int "graceful stop lost nothing" 0 !lost

(* --- Many mostly-idle connections over the scheduler runtime --- *)

(* The C10K shape at test scale: 512 connections resident in the per-domain
   pollers, only 16 of them hot. The client and the in-process server share
   one fd table, so size the target to the limit actually in force. *)
let test_many_idle_conns () =
  let cap = Server.Sys_poll.ensure_fd_capacity 2048 in
  let open_conns = min 512 (max 64 ((cap - 128) / 2)) in
  let srv = small_server () in
  let port = Server.Nvserve.port srv in
  let acks = Server.Loadgen.make_acks () in
  let report =
    Server.Loadgen.run ~acks
      {
        (Server.Loadgen.default_config ~port) with
        Server.Loadgen.nconns = 4;
        duration = 0.5;
        nkeys = 400;
        pipeline = 4;
        open_conns;
        hot = 16;
      }
  in
  check_bool "did work" true (report.Server.Loadgen.ops > 100);
  check_int "no validation errors" 0 report.Server.Loadgen.errors;
  check_int "no dead connections" 0 report.Server.Loadgen.dead_conns;
  check_int "every connection opened" 0 report.Server.Loadgen.open_failures;
  check_bool "all conns reached the server" true
    (Server.Nvserve.connections_accepted srv >= open_conns);
  (* Validated audit over the live server: every acknowledged mutation with
     nothing in flight must read back exactly as acked. *)
  let checked, _exempt, lost =
    Server.Loadgen.verify_acked ~host:"127.0.0.1" ~port ~value_bytes:24 acks
  in
  check_bool "audit covered keys" true (checked > 0);
  check_int "no acked state lost" 0 lost;
  Server.Nvserve.stop srv

(* --- Stats protocol + telemetry plane over a live server --- *)

let connect_to port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let recv_until fd stop =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  while not (stop (Buffer.contents buf)) do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "server closed the connection early"
    | n -> Buffer.add_subbytes buf chunk 0 n
  done;
  Buffer.contents buf

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let ends_with hay suffix =
  let hl = String.length hay and sl = String.length suffix in
  hl >= sl && String.sub hay (hl - sl) sl = suffix

let stat_kvs resp =
  List.filter_map
    (fun line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      match String.split_on_char ' ' line with
      | "STAT" :: k :: rest -> Some (k, String.concat " " rest)
      | _ -> None)
    (String.split_on_char '\n' resp)

(* The [stats nvlf] wire contract for an [nshards]-shard server: the exact
   key list in exact order. Appending new keys is fine; renaming, removing
   or reordering these is a breaking change this test (and the CI scrape
   baseline) must catch. *)
let expected_nvlf_keys ~nshards =
  [
    "mode"; "workers"; "shards"; "port"; "max_batch"; "max_delay_us";
    "sample_every"; "uptime_s"; "conns_accepted"; "conns_adopted";
    "conns_closed"; "conns_idle_closed"; "open_conns"; "requests";
    "requests_served"; "rejects"; "quits"; "bytes_read"; "bytes_written";
    "write_stalls"; "outbuf_grows"; "outbuf_hwm"; "cmd_get"; "cmd_set";
    "cmd_delete"; "cmd_incr"; "cmd_stats"; "cmd_other"; "get_hits";
    "get_misses"; "get_hit_rate"; "fences"; "write_backs"; "sync_batches";
    "lines_drained"; "allocs"; "frees"; "epoch_stalls"; "group_commits";
    "group_ops"; "deferred_links"; "lc_adds"; "lc_fails"; "lc_flushes";
    "lc_hit_rate"; "fences_per_req"; "wbs_per_req"; "ops_per_commit";
    "batch_depth_p50"; "batch_depth_p99"; "batch_depth_max"; "curr_items";
  ]
  @ List.concat_map
      (fun s ->
        [ Printf.sprintf "shard%d_items" s; Printf.sprintf "shard%d_bytes" s ])
      (List.init nshards Fun.id)
  @ [
      "sampled_requests"; "fence_debt_p50"; "fence_debt_p99"; "req_p50_us";
      "req_p99_us"; "req_p999_us"; "req_max_us"; "stage_queue_us";
      "stage_parse_us"; "stage_execute_us"; "stage_fence_us";
      "stage_respond_us"; "runtime"; "sched_steals"; "sched_steal_fails";
      "sched_migrations"; "sched_injected"; "run_queue_depth";
    ]

let test_stats_protocol () =
  let srv =
    Server.Nvserve.start
      {
        (Server.Nvserve.default_config ()) with
        Server.Nvserve.nworkers = 2;
        nbuckets = 512;
        capacity = 8_000;
        metrics_port = Some 0;
        sample_every = 1;
      }
  in
  let port = Server.Nvserve.port srv in
  let fd = connect_to port in
  (* Stats requests pipelined between storage operations on one connection:
     replies must come back in order, and an unknown stats argument answers
     ERROR without wedging the stream. *)
  let req =
    "set k1 0 0 3\r\nabc\r\nstats\r\nget k1\r\nstats bogus\r\nstats nvlf\r\n"
  in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let resp =
    recv_until fd (fun s -> contains s "stage_respond_us" && ends_with s "END\r\n")
  in
  check_bool "set answered first" true
    (String.length resp >= 8 && String.sub resp 0 8 = "STORED\r\n");
  check_bool "get served between stats" true
    (contains resp "VALUE k1 0 3\r\nabc\r\n");
  check_bool "unknown stats arg answers ERROR" true (contains resp "ERROR\r\n");
  (* Plain [stats] carries the memcached-standard keys. *)
  let basic = stat_kvs resp in
  List.iter
    (fun k ->
      check_bool (k ^ " present") true (List.mem_assoc k basic))
    [ "pid"; "threads"; "curr_connections"; "cmd_get"; "cmd_set"; "bytes_read" ];
  check_str "one set counted when stats ran" "1" (List.assoc "cmd_set" basic);
  (* [stats nvlf] key schema: exact list, exact order. *)
  let nvlf_resp =
    let marker = "ERROR\r\n" in
    let ml = String.length marker in
    let rec find i =
      if i + ml > String.length resp then Alcotest.fail "no ERROR reply"
      else if String.sub resp i ml = marker then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub resp (i + ml) (String.length resp - i - ml)
  in
  Alcotest.(check (list string))
    "stats nvlf key schema (ordered)"
    (expected_nvlf_keys ~nshards:2)
    (List.map fst (stat_kvs nvlf_resp));
  (* A second scrape after the first batch's responses drained: the sampler
     (1-in-1) must have closed samples by now, and the live gauges agree
     with this connection being open. *)
  ignore (Unix.write_substring fd "stats nvlf\r\n" 0 12);
  let resp2 =
    recv_until fd (fun s -> contains s "stage_respond_us" && ends_with s "END\r\n")
  in
  let kvs2 = stat_kvs resp2 in
  check_str "one open connection" "1" (List.assoc "open_conns" kvs2);
  check_bool "requests counted" true
    (int_of_string (List.assoc "requests" kvs2) >= 5);
  check_bool "sampled requests closed" true
    (int_of_string (List.assoc "sampled_requests" kvs2) >= 1);
  check_bool "sampled p50 positive" true
    (float_of_string (List.assoc "req_p50_us" kvs2) > 0.);
  check_str "curr_items tracks the store" "1" (List.assoc "curr_items" kvs2);
  (* The telemetry API agrees with the wire view. *)
  let tel = Server.Nvserve.telemetry srv in
  check_bool "cmd_stats counted via API" true
    (Server.Telemetry.counter tel Server.Telemetry.c_cmd_stats >= 3);
  (* Prometheus text exposition over the metrics listener. *)
  (match Server.Nvserve.metrics_port srv with
  | None -> Alcotest.fail "metrics port not bound"
  | Some mp ->
      let mfd = connect_to mp in
      let http = "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring mfd http 0 (String.length http));
      let body = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read mfd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes body chunk 0 n;
            drain ()
      in
      drain ();
      Unix.close mfd;
      let doc = Buffer.contents body in
      check_bool "HTTP 200" true (contains doc "200 OK");
      check_bool "exposition type line" true (contains doc "# TYPE nvlf_info gauge");
      check_bool "counters exported" true (contains doc "nvlf_requests ");
      check_bool "per-shard gauges exported" true (contains doc "nvlf_shard1_items "));
  Unix.close fd;
  Server.Nvserve.stop srv

(* --- Crash drill --- *)

let test_drill () =
  let r =
    Server.Drill.run
      {
        (Server.Drill.default_config ()) with
        Server.Drill.nworkers = 2;
        nbuckets = 512;
        capacity = 5_000;
        nconns = 2;
        duration = 0.6;
        nkeys = 500;
        pipeline = 8;
        (* The kill must land between batched executions and their fences
           without breaking the strict audit: held responses are unacked. *)
        max_batch = 32;
        max_delay_us = 200;
      }
  in
  check_bool "took traffic" true (r.Server.Drill.load.Server.Loadgen.ops > 0);
  check_int "no load errors" 0 r.Server.Drill.load.Server.Loadgen.errors;
  check_int "no acked losses" 0 r.Server.Drill.lost;
  check_int "no residual leaks" 0 r.Server.Drill.residual_leaks;
  check_bool "served after recovery" true r.Server.Drill.post_ok;
  check_bool "strict under link-and-persist" true r.Server.Drill.strict;
  check_bool "drill verdict" true r.Server.Drill.ok;
  (* The recovery journal: crash phases plus recovery phases, in start
     order, whose depth-0 recovery spans sum to the reported recovery
     time — the invariant the drill report advertises. *)
  let tl = r.Server.Drill.timeline in
  let has phase =
    List.exists (fun (e : Nvm.Timeline.event) -> e.Nvm.Timeline.phase = phase) tl
  in
  check_bool "crash phase journaled" true (has "heap.crash");
  check_bool "layout phase journaled" true (has "ctx.recover");
  check_bool "sweep phase journaled" true (has "shards.sweep");
  let phase_sum =
    List.fold_left
      (fun acc (e : Nvm.Timeline.event) ->
        let crash_phase =
          String.length e.Nvm.Timeline.phase >= 5
          && String.sub e.Nvm.Timeline.phase 0 5 = "heap."
        in
        if e.Nvm.Timeline.depth = 0 && not crash_phase then
          acc +. e.Nvm.Timeline.dur_s
        else acc)
      0. tl
  in
  Alcotest.(check (float 1e-9))
    "depth-0 recovery phases sum to recovery_s" r.Server.Drill.recovery_s
    phase_sum

let () =
  Alcotest.run "server"
    [
      ( "framing",
        [
          Alcotest.test_case "pipelined" `Quick test_framing_pipelined;
          Alcotest.test_case "storage waits" `Quick test_framing_storage_waits_for_data;
          Alcotest.test_case "rejects" `Quick test_framing_rejects;
          Alcotest.test_case "too long" `Quick test_framing_too_long;
        ] );
      ( "outbuf",
        [
          Alcotest.test_case "release watermark" `Quick test_outbuf_release_watermark;
          Alcotest.test_case "compaction + growth" `Quick
            test_outbuf_compaction_and_growth;
        ] );
      ( "shard-store",
        [
          Alcotest.test_case "ops" `Quick test_shard_store_ops;
          Alcotest.test_case "recover" `Quick test_shard_store_recover;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "crash between execution and fence" `Quick
            test_group_commit_crash_boundary;
          Alcotest.test_case "sanitized batched worker" `Quick
            test_group_commit_sanitized;
        ] );
      ( "nvserve",
        [
          Alcotest.test_case "many idle conns, hot subset" `Quick
            test_many_idle_conns;
          Alcotest.test_case "concurrent load + stop durability" `Quick
            test_server_concurrent_load;
          Alcotest.test_case "stats protocol + telemetry plane" `Quick
            test_stats_protocol;
          Alcotest.test_case "crash drill" `Quick test_drill;
        ] );
    ]
