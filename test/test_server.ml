(* NVServe: request framing, the sharded store, a real loopback server under
   concurrent load, graceful-stop durability, and the crash drill. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- Framing --- *)

let next s ~pos = Server.Framing.next (Bytes.of_string s) ~pos ~len:(String.length s - pos)

let test_framing_pipelined () =
  let s = "get a\r\nget b\r\n" in
  (match next s ~pos:0 with
  | Server.Framing.Request { req; consumed } ->
      check_str "first" "get a\r\n" req;
      check_int "consumed" 7 consumed
  | _ -> Alcotest.fail "expected Request");
  match next s ~pos:7 with
  | Server.Framing.Request { req; _ } -> check_str "second" "get b\r\n" req
  | _ -> Alcotest.fail "expected Request"

let test_framing_storage_waits_for_data () =
  (match next "set k 0 0 3\r\nab" ~pos:0 with
  | Server.Framing.Need_more -> ()
  | _ -> Alcotest.fail "torn data block should wait");
  (match next "set k 0 0 3" ~pos:0 with
  | Server.Framing.Need_more -> ()
  | _ -> Alcotest.fail "torn command line should wait");
  match next "set k 0 0 3\r\nabc\r\nget k\r\n" ~pos:0 with
  | Server.Framing.Request { req; consumed } ->
      check_str "whole request" "set k 0 0 3\r\nabc\r\n" req;
      check_int "consumed" 18 consumed
  | _ -> Alcotest.fail "expected complete storage request"

let test_framing_rejects () =
  (match next "set k 0 0 zz\r\n" ~pos:0 with
  | Server.Framing.Reject { response; consumed } ->
      check_str "bad count" "CLIENT_ERROR bad command line format\r\n" response;
      check_int "line consumed" 14 consumed
  | _ -> Alcotest.fail "unparseable byte count should reject");
  (match next "set k 0 0 999999\r\n" ~pos:0 with
  | Server.Framing.Reject { response; _ } ->
      check_str "oversized" "SERVER_ERROR object too large for cache\r\n" response
  | _ -> Alcotest.fail "unbufferable data block should reject");
  (match next "set k 0 0\r\n" ~pos:0 with
  | Server.Framing.Reject { response; _ } -> check_str "arity" "ERROR\r\n" response
  | _ -> Alcotest.fail "wrong storage arity should reject");
  (* Unknown commands frame fine — the protocol layer answers them. *)
  match next "frobnicate\r\n" ~pos:0 with
  | Server.Framing.Request _ -> ()
  | _ -> Alcotest.fail "unknown command is the protocol layer's problem"

let test_framing_too_long () =
  let s = String.make Server.Framing.max_line_bytes 'a' in
  (match next s ~pos:0 with
  | Server.Framing.Too_long -> ()
  | _ -> Alcotest.fail "unterminated max-length line should be Too_long");
  match next "ab" ~pos:0 with
  | Server.Framing.Need_more -> ()
  | _ -> Alcotest.fail "short partial line should wait"

(* --- Shard store --- *)

let mk_ctx ?(nthreads = 2) () =
  Lfds.Ctx.create
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 20;
      nthreads;
      apt_entries = 4096;
      static_words = 1 lsl 15;
    }

let test_shard_store_ops () =
  let ctx = mk_ctx () in
  let s = Server.Shard_store.create ctx ~nshards:2 ~nbuckets:64 ~capacity:1000 in
  let ops = Server.Shard_store.ops s in
  for i = 0 to 99 do
    ops.Kvcache.Cache_intf.set ~tid:0 ~key:(Printf.sprintf "k%d" i)
      ~value:(Printf.sprintf "v%d" i)
  done;
  check_int "count" 100 (Server.Shard_store.count s);
  (* Any worker reads any shard with its own cursor. *)
  for i = 0 to 99 do
    Alcotest.(check (option string))
      "readback" (Some (Printf.sprintf "v%d" i))
      (ops.Kvcache.Cache_intf.get ~tid:1 ~key:(Printf.sprintf "k%d" i))
  done;
  check_bool "delete" true (ops.Kvcache.Cache_intf.delete ~tid:0 ~key:"k0");
  check_int "count after delete" 99 (Server.Shard_store.count s);
  (* Keys spread across both shards. *)
  let hit = Array.make 2 false in
  for i = 0 to 99 do
    hit.(Server.Shard_store.shard_of s (Printf.sprintf "k%d" i)) <- true
  done;
  check_bool "both shards used" true (hit.(0) && hit.(1))

let test_shard_store_recover () =
  let cfg =
    {
      (Lfds.Ctx.default_config ()) with
      size_words = 1 lsl 20;
      nthreads = 2;
      apt_entries = 4096;
      static_words = 1 lsl 15;
    }
  in
  let ctx = Lfds.Ctx.create cfg in
  let s = Server.Shard_store.create ctx ~nshards:2 ~nbuckets:64 ~capacity:1000 in
  let ops = Server.Shard_store.ops s in
  for i = 0 to 49 do
    ops.Kvcache.Cache_intf.set ~tid:0 ~key:(Printf.sprintf "k%d" i)
      ~value:(Printf.sprintf "v%d" i)
  done;
  (* Worst-case power cut for link-and-persist: nothing survives except
     what was explicitly persisted. *)
  let heap = Lfds.Ctx.heap ctx in
  Nvm.Heap.crash ~seed:7 ~eviction_probability:0. heap;
  let ctx', active_pages = Lfds.Ctx.recover heap cfg in
  let s', _freed =
    Server.Shard_store.recover ctx' ~nshards:2 ~nbuckets:64 ~capacity:1000
      ~active_pages ~nworkers:2
  in
  let ops' = Server.Shard_store.ops s' in
  check_int "all items recovered" 50 (Server.Shard_store.count s');
  for i = 0 to 49 do
    Alcotest.(check (option string))
      "recovered value" (Some (Printf.sprintf "v%d" i))
      (ops'.Kvcache.Cache_intf.get ~tid:0 ~key:(Printf.sprintf "k%d" i))
  done;
  check_int "no leaks" 0 (Server.Shard_store.leak_count s' ~active_pages)

(* --- Live server under concurrent load --- *)

let small_server () =
  Server.Nvserve.start
    {
      (Server.Nvserve.default_config ()) with
      Server.Nvserve.nworkers = 2;
      nbuckets = 512;
      capacity = 8_000;
      idle_timeout = 30.;
    }

let test_server_concurrent_load () =
  let srv = small_server () in
  let port = Server.Nvserve.port srv in
  let acks = Server.Loadgen.make_acks () in
  let report =
    Server.Loadgen.run ~acks
      {
        (Server.Loadgen.default_config ~port) with
        Server.Loadgen.nconns = 4;
        duration = 0.4;
        nkeys = 400;
        pipeline = 4;
      }
  in
  check_bool "did work" true (report.Server.Loadgen.ops > 100);
  check_int "no validation errors" 0 report.Server.Loadgen.errors;
  check_int "no dead connections" 0 report.Server.Loadgen.dead_conns;
  check_bool "server counted requests" true
    (Server.Nvserve.requests_served srv >= report.Server.Loadgen.ops);
  check_int "four connections accepted" 4 (Server.Nvserve.connections_accepted srv);
  (* Graceful stop persists everything: a worst-case crash right after stop
     must lose nothing that was acknowledged. *)
  Server.Nvserve.stop srv;
  let heap = Lfds.Ctx.heap (Server.Nvserve.ctx srv) in
  Nvm.Heap.crash ~seed:11 ~eviction_probability:0. heap;
  let hcfg = Server.Nvserve.heap_cfg srv in
  let scfg = Server.Nvserve.config srv in
  let ctx', active_pages = Lfds.Ctx.recover heap hcfg in
  let s', _ =
    Server.Shard_store.recover ctx' ~nshards:scfg.Server.Nvserve.nworkers
      ~nbuckets:scfg.Server.Nvserve.nbuckets
      ~capacity:scfg.Server.Nvserve.capacity ~active_pages ~nworkers:2
  in
  let ops' = Server.Shard_store.ops s' in
  let lost = ref 0 in
  Hashtbl.iter
    (fun key state ->
      let got = ops'.Kvcache.Cache_intf.get ~tid:0 ~key in
      match (state, got) with
      | Server.Loadgen.Stored v, Some value ->
          let n = int_of_string (String.sub key 3 (String.length key - 3)) in
          if value <> Server.Loadgen.value_for ~n ~version:v ~value_bytes:24 then
            incr lost
      | Server.Loadgen.Stored _, None -> incr lost
      | Server.Loadgen.Deleted, None -> ()
      | Server.Loadgen.Deleted, Some _ -> incr lost)
    acks.Server.Loadgen.acked;
  check_int "graceful stop lost nothing" 0 !lost

(* --- Crash drill --- *)

let test_drill () =
  let r =
    Server.Drill.run
      {
        (Server.Drill.default_config ()) with
        Server.Drill.nworkers = 2;
        nbuckets = 512;
        capacity = 5_000;
        nconns = 2;
        duration = 0.6;
        nkeys = 500;
        pipeline = 4;
      }
  in
  check_bool "took traffic" true (r.Server.Drill.load.Server.Loadgen.ops > 0);
  check_int "no load errors" 0 r.Server.Drill.load.Server.Loadgen.errors;
  check_int "no acked losses" 0 r.Server.Drill.lost;
  check_int "no residual leaks" 0 r.Server.Drill.residual_leaks;
  check_bool "served after recovery" true r.Server.Drill.post_ok;
  check_bool "strict under link-and-persist" true r.Server.Drill.strict;
  check_bool "drill verdict" true r.Server.Drill.ok

let () =
  Alcotest.run "server"
    [
      ( "framing",
        [
          Alcotest.test_case "pipelined" `Quick test_framing_pipelined;
          Alcotest.test_case "storage waits" `Quick test_framing_storage_waits_for_data;
          Alcotest.test_case "rejects" `Quick test_framing_rejects;
          Alcotest.test_case "too long" `Quick test_framing_too_long;
        ] );
      ( "shard-store",
        [
          Alcotest.test_case "ops" `Quick test_shard_store_ops;
          Alcotest.test_case "recover" `Quick test_shard_store_recover;
        ] );
      ( "nvserve",
        [
          Alcotest.test_case "concurrent load + stop durability" `Quick
            test_server_concurrent_load;
          Alcotest.test_case "crash drill" `Quick test_drill;
        ] );
    ]
