(* Durable Chase-Lev deque: owner LIFO / thief FIFO semantics, buffer
   growth to its hard cap, sequential model agreement with wrap-around,
   owner-vs-thief stress, crash + recovery idempotence, whole-history
   linearizability, sanitizer cleanliness, crash enumeration and the
   producer-consumer drill. *)

module I = Harness.Instance
module QI = Harness.Queue_instance

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_flavors = [ I.Volatile; I.Lp; I.Lc; I.Nvt; I.Lf ]
let strict_flavors = [ I.Lp; I.Nvt; I.Lf ]

let mkd ?(nthreads = 1) flavor =
  QI.create ~nthreads ~size_hint:512 ~structure:QI.Deque ~flavor ()

(* ---- sequential semantics ---------------------------------------------- *)

let test_ends flavor () =
  let d = mkd flavor in
  for v = 1 to 10 do
    QI.put d ~tid:0 ~value:v
  done;
  check_int "size" 10 (QI.size d);
  Alcotest.(check (option int)) "pop is LIFO" (Some 10) (QI.take d ~tid:0);
  Alcotest.(check (option int)) "steal is FIFO" (Some 1) (QI.steal d ~tid:0);
  Alcotest.(check (option int)) "pop again" (Some 9) (QI.take d ~tid:0);
  Alcotest.(check (option int)) "steal again" (Some 2) (QI.steal d ~tid:0);
  check_int "size after" 6 (QI.size d);
  Alcotest.(check (list int)) "window" [ 3; 4; 5; 6; 7; 8 ] (QI.to_list d)

(* Growth doubles through the 16/32/64-word classes; past the largest cap
   the owner is refused. *)
let test_grow_to_cap flavor () =
  let d = mkd flavor in
  for v = 1 to 56 do
    QI.put d ~tid:0 ~value:v
  done;
  check_int "at cap" 56 (QI.size d);
  Alcotest.check_raises "refused past cap" Nvqueue.Durable_deque.Deque_full
    (fun () -> QI.put d ~tid:0 ~value:57);
  Alcotest.(check (list int)) "survived the copies"
    (List.init 56 (fun i -> i + 1))
    (QI.to_list d);
  (* Drain from both ends and refill: indices wrap physical slots. *)
  for _ = 1 to 30 do
    ignore (QI.steal d ~tid:0)
  done;
  for v = 100 to 110 do
    QI.put d ~tid:0 ~value:v
  done;
  Alcotest.(check (option int)) "steal after wrap" (Some 31) (QI.steal d ~tid:0);
  Alcotest.(check (option int)) "pop after wrap" (Some 110) (QI.take d ~tid:0)

(* Random push/pop/steal stream against a list model (front = steal end). *)
let test_model flavor () =
  let d = mkd flavor in
  let model = ref [] in
  let rng = Workload.Xoshiro.make ~seed:37 in
  let counter = ref 0 in
  let without_last l =
    match List.rev l with [] -> [] | _ :: r -> List.rev r
  in
  let last_opt l = match List.rev l with [] -> None | v :: _ -> Some v in
  for _ = 1 to 2000 do
    match Workload.Xoshiro.below rng 4 with
    | 0 | 1 when List.length !model < 50 ->
        incr counter;
        QI.put d ~tid:0 ~value:!counter;
        model := !model @ [ !counter ]
    | 2 ->
        Alcotest.(check (option int))
          "pop agrees" (last_opt !model) (QI.take d ~tid:0);
        model := without_last !model
    | _ ->
        Alcotest.(check (option int))
          "steal agrees"
          (match !model with [] -> None | v :: _ -> Some v)
          (QI.steal d ~tid:0);
        model := (match !model with [] -> [] | _ :: tl -> tl)
  done;
  Alcotest.(check (list int)) "final window" !model (QI.to_list d)

(* ---- owner vs thieves -------------------------------------------------- *)

let test_stress flavor () =
  let pushes = 600 in
  let d = mkd ~nthreads:4 flavor in
  let owner_done = Atomic.make false in
  let taken = Array.make 4 [] in
  let owner () =
    let rng = Workload.Xoshiro.make ~seed:17 in
    let n = ref 0 in
    while !n < pushes do
      if Workload.Xoshiro.below rng 3 < 2 then begin
        if QI.size d < 40 then begin
          incr n;
          QI.put d ~tid:0 ~value:!n
        end
        else Domain.cpu_relax ()
      end
      else
        match QI.take d ~tid:0 with
        | Some v -> taken.(0) <- v :: taken.(0)
        | None -> ()
    done;
    Atomic.set owner_done true
  in
  let thief tid () =
    let continue = ref true in
    while !continue do
      match QI.steal d ~tid with
      | Some v -> taken.(tid) <- v :: taken.(tid)
      | None ->
          if Atomic.get owner_done then continue := false
          else Domain.cpu_relax ()
    done
  in
  let ds =
    Domain.spawn owner :: List.init 3 (fun i -> Domain.spawn (thief (i + 1)))
  in
  List.iter Domain.join ds;
  let leftover = QI.drain d ~tid:0 in
  let all = List.concat (Array.to_list (Array.map List.rev taken)) @ leftover in
  check_int "every push accounted for" pushes (List.length all);
  check_int "no duplicates" pushes (List.length (List.sort_uniq compare all));
  (* Each thief's stream is increasing: steals take the oldest. *)
  Array.iteri
    (fun tid l ->
      if tid > 0 then
        ignore
          (List.fold_left
             (fun prev v ->
               check_bool "thief stream increasing" true (v > prev);
               v)
             0 (List.rev l)))
    taken

(* ---- crash + recovery -------------------------------------------------- *)

let test_crash_recover_twice flavor () =
  let d = mkd flavor in
  for v = 1 to 30 do
    QI.put d ~tid:0 ~value:v
  done;
  for _ = 1 to 5 do
    ignore (QI.steal d ~tid:0)
  done;
  for _ = 1 to 3 do
    ignore (QI.take d ~tid:0)
  done;
  let d, _, _ = QI.crash_and_recover ~seed:31 d in
  Alcotest.(check (list int)) "first recovery"
    (List.init 22 (fun i -> i + 6))
    (QI.to_list d);
  for _ = 1 to 4 do
    ignore (QI.steal d ~tid:0)
  done;
  for v = 101 to 108 do
    QI.put d ~tid:0 ~value:v
  done;
  let d, _, _ = QI.crash_and_recover ~seed:32 d in
  Alcotest.(check (list int)) "second recovery"
    (List.init 18 (fun i -> i + 10) @ List.init 8 (fun i -> i + 101))
    (QI.to_list d)

(* ---- linearizability --------------------------------------------------- *)

let test_lincheck_live flavor () =
  let o =
    Sanitizer.Lincheck.queue_live_check ~nthreads:2 ~ops_per_thread:24
      ~structure:QI.Deque ~flavor ()
  in
  if not (Sanitizer.Lincheck.ok o) then
    Alcotest.failf "%a" Sanitizer.Lincheck.pp_outcome o

let test_lincheck_durable flavor () =
  let o =
    Sanitizer.Lincheck.queue_durable_check ~nthreads:2 ~total_ops:48
      ~structure:QI.Deque ~flavor ()
  in
  if not (Sanitizer.Lincheck.ok o) then
    Alcotest.failf "%a" Sanitizer.Lincheck.pp_outcome o

(* ---- sanitizers -------------------------------------------------------- *)

(* Pre-attach allocations (the initial buffer) must be seeded — see
   test_queue.ml. *)
let seed_preexisting san inst =
  let alloc = Lfds.Ctx.allocator inst.QI.ctx in
  QI.iter_reachable inst (fun base ->
      Sanitizer.Nvsan.seed_node san ~base
        ~size:(Nvm.Nvalloc.size_class_of alloc ~tid:0 base));
  (* top/bottom hold raw indices: integer CASes there must not read as
     mark-protocol traffic. *)
  List.iter
    (Sanitizer.Nvsan.declare_index_word san)
    (QI.index_words inst)

let test_nvsan_clean flavor () =
  let d = mkd flavor in
  let heap = Lfds.Ctx.heap d.QI.ctx in
  let cfg =
    {
      (Sanitizer.Nvsan.config_for_mode (I.mode_of_flavor flavor)) with
      strict_deref = flavor <> I.Volatile;
      root_limit = Lfds.Ctx.static_limit d.QI.ctx;
    }
  in
  let san = Sanitizer.Nvsan.attach ~config:cfg heap in
  seed_preexisting san d;
  let rng = Workload.Xoshiro.make ~seed:13 in
  let counter = ref 0 in
  for _ = 1 to 600 do
    match Workload.Xoshiro.below rng 4 with
    | 0 | 1 when QI.size d < 40 ->
        incr counter;
        QI.put d ~tid:0 ~value:!counter
    | 2 -> ignore (QI.take d ~tid:0)
    | _ -> ignore (QI.steal d ~tid:0)
  done;
  Sanitizer.Nvsan.detach san;
  List.iter
    (fun v ->
      Printf.printf "nvsan: %s\n%!" (Sanitizer.Nvsan.violation_to_string v))
    (Sanitizer.Nvsan.violations san);
  check_int
    ("ws-deque/" ^ I.flavor_name flavor ^ ": violations")
    0
    (Sanitizer.Nvsan.violation_count san)

let test_nvrace_clean flavor () =
  let d = mkd ~nthreads:4 flavor in
  let heap = Lfds.Ctx.heap d.QI.ctx in
  let det =
    Sanitizer.Nvrace.attach
      ~config:
        {
          (Sanitizer.Nvrace.default_config ()) with
          root_limit = Lfds.Ctx.static_limit d.QI.ctx;
        }
      heap
  in
  let owner () =
    let rng = Workload.Xoshiro.make ~seed:3 in
    let counter = ref 0 in
    for _ = 1 to 300 do
      if Workload.Xoshiro.below rng 3 < 2 && QI.size d < 40 then begin
        incr counter;
        QI.put d ~tid:0 ~value:!counter
      end
      else ignore (QI.take d ~tid:0)
    done
  in
  let thief tid () =
    for _ = 1 to 200 do
      ignore (QI.steal d ~tid)
    done
  in
  let ds =
    Domain.spawn owner :: List.init 3 (fun i -> Domain.spawn (thief (i + 1)))
  in
  List.iter Domain.join ds;
  Sanitizer.Nvrace.detach det;
  List.iter
    (fun v ->
      Printf.printf "race: %s\n%!" (Sanitizer.Nvrace.violation_to_string v))
    (Sanitizer.Nvrace.violations det);
  check_int
    ("ws-deque/" ^ I.flavor_name flavor ^ ": races")
    0
    (Sanitizer.Nvrace.violation_count det)

(* ---- exhaustive crash enumeration -------------------------------------- *)

let test_crash_enum flavor () =
  let r =
    Sanitizer.Crash_enum.run_queue ~flavor ~ops_per_trip:24 ~trip_start:1
      ~trip_stop:90 ~trip_step:13 ~max_dirty:8 ~structure:QI.Deque ()
  in
  List.iter (Printf.printf "crash-enum: %s\n%!") r.Sanitizer.Crash_enum.violations;
  check_int "violations" 0 (List.length r.Sanitizer.Crash_enum.violations);
  check_bool "some crashes enumerated" true
    (r.Sanitizer.Crash_enum.states_checked > 0)

(* ---- producer-consumer drill ------------------------------------------- *)

let test_drill flavor () =
  let r =
    Sanitizer.Queue_drill.run ~consumers:2 ~ops_per_producer:120 ~trip:2500
      ~structure:QI.Deque ~flavor ()
  in
  if not (Sanitizer.Queue_drill.ok r) then
    Alcotest.failf "%a" Sanitizer.Queue_drill.pp_report r;
  check_bool "produced something" true (r.Sanitizer.Queue_drill.produced > 0)

(* ---- suite ------------------------------------------------------------- *)

let per_flavor name flavors f =
  List.map
    (fun fl ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (I.flavor_name fl))
        `Quick (f fl))
    flavors

let () =
  Alcotest.run "deque"
    [
      ("ends", per_flavor "pop LIFO / steal FIFO" all_flavors test_ends);
      ("grow", per_flavor "to hard cap" all_flavors test_grow_to_cap);
      ("model", per_flavor "random stream" all_flavors test_model);
      ("stress", per_flavor "owner + 3 thieves" [ I.Lp; I.Lf ] test_stress);
      ("crash", per_flavor "recover twice" strict_flavors test_crash_recover_twice);
      ( "lincheck",
        per_flavor "live" [ I.Lp; I.Lf ] test_lincheck_live
        @ per_flavor "durable" strict_flavors test_lincheck_durable );
      ( "sanitizer",
        per_flavor "nvsan clean" all_flavors test_nvsan_clean
        @ per_flavor "nvrace clean" [ I.Lp ] test_nvrace_clean );
      ("crash-enum", per_flavor "small scope" strict_flavors test_crash_enum);
      ("drill", per_flavor "owner + thieves" [ I.Lp; I.Lf ] test_drill);
    ]
