(* Tests for the cursor hot path of the simulated heap: O(1) pending-buffer
   dedup, implicit drain when the write-combining queue overflows, counter
   equivalence between the cursor and [~tid] entry points, and crash
   injection raised from inside cursor operations. *)

open Nvm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_heap ?(size_words = 65536) () = Heap.create ~size_words ()

(* --- Pending-buffer dedup --- *)

let test_dedup_same_line () =
  let h = fresh_heap () in
  let cu = Heap.cursor h ~tid:0 in
  (* Eight stores to the same cache line; eight write-back requests must
     collapse into one pending entry. *)
  for i = 0 to Cacheline.words_per_line - 1 do
    Heap.Cursor.store cu (64 + i) (i + 1);
    Heap.Cursor.write_back cu (64 + i)
  done;
  check_int "one pending line" 1 (Heap.Cursor.pending_count cu);
  Heap.Cursor.write_back cu 128;
  check_int "distinct line queues" 2 (Heap.Cursor.pending_count cu);
  let st = Heap.Cursor.stats cu in
  check_int "all requests counted" 9 st.Pstats.write_backs;
  Heap.Cursor.fence cu;
  check_int "drained" 0 (Heap.Cursor.pending_count cu);
  check_int "one batch" 1 st.Pstats.sync_batches;
  check_int "two lines durable" 2 st.Pstats.lines_drained;
  for i = 0 to Cacheline.words_per_line - 1 do
    check_int "durable value" (i + 1) (Heap.durable_load h (64 + i))
  done

let test_dedup_resets_after_drain () =
  let h = fresh_heap () in
  let cu = Heap.cursor h ~tid:0 in
  Heap.Cursor.store cu 64 1;
  Heap.Cursor.write_back cu 64;
  Heap.Cursor.fence cu;
  (* The generation bump must un-stamp the line: a new write-back after the
     drain queues again instead of being treated as a duplicate. *)
  Heap.Cursor.store cu 64 2;
  Heap.Cursor.write_back cu 64;
  check_int "requeued after drain" 1 (Heap.Cursor.pending_count cu);
  Heap.Cursor.fence cu;
  check_int "second value durable" 2 (Heap.durable_load h 64)

(* --- Buffer overflow: implicit drain --- *)

let test_overflow_implicit_drain () =
  (* More distinct lines than the pending buffer holds (4096). The
     overflowing request must drain the full buffer as one implicit batch,
     then queue itself. *)
  let lines = 4200 in
  let h = fresh_heap ~size_words:(lines * Cacheline.words_per_line) () in
  let cu = Heap.cursor h ~tid:0 in
  for l = 0 to lines - 1 do
    Heap.Cursor.store cu (Cacheline.addr_of_line l) (l + 1);
    Heap.Cursor.write_back cu (Cacheline.addr_of_line l)
  done;
  let st = Heap.Cursor.stats cu in
  check_int "one implicit batch" 1 st.Pstats.sync_batches;
  check_int "full buffer drained" 4096 st.Pstats.lines_drained;
  check_int "remainder still pending" (lines - 4096) (Heap.Cursor.pending_count cu);
  check_int "every request counted once" lines st.Pstats.write_backs;
  (* Lines of the implicitly drained batch are durable already. *)
  check_int "drained line durable" 1 (Heap.durable_load h 0);
  check_int "drained line durable" 4096 (Heap.durable_load h (Cacheline.addr_of_line 4095));
  Heap.Cursor.fence cu;
  check_int "tail durable after fence" lines
    (Heap.durable_load h (Cacheline.addr_of_line (lines - 1)))

(* --- Cursor vs [~tid] counter equivalence --- *)

let exercise_cursor h =
  let cu = Heap.cursor h ~tid:0 in
  for i = 0 to 99 do
    Heap.Cursor.store cu i (i * 3);
    ignore (Heap.Cursor.load cu i)
  done;
  ignore (Heap.Cursor.cas cu 8 ~expected:24 ~desired:7);
  ignore (Heap.Cursor.fetch_add cu 16 5);
  for l = 0 to 12 do
    Heap.Cursor.write_back cu (Cacheline.addr_of_line l)
  done;
  Heap.Cursor.fence cu;
  Heap.Cursor.persist cu 0

let exercise_tid h =
  for i = 0 to 99 do
    Heap.store h ~tid:0 i (i * 3);
    ignore (Heap.load h ~tid:0 i)
  done;
  ignore (Heap.cas h ~tid:0 8 ~expected:24 ~desired:7);
  ignore (Heap.fetch_add h ~tid:0 16 5);
  for l = 0 to 12 do
    Heap.write_back h ~tid:0 (Cacheline.addr_of_line l)
  done;
  Heap.fence h ~tid:0;
  Heap.persist h ~tid:0 0

let counters (st : Pstats.t) =
  [
    st.loads;
    st.stores;
    st.cas;
    st.write_backs;
    st.fences;
    st.sync_batches;
    st.lines_drained;
  ]

let test_counter_equivalence () =
  let ha = fresh_heap () and hb = fresh_heap () in
  exercise_cursor ha;
  exercise_tid hb;
  Alcotest.(check (list int))
    "counters agree"
    (counters (Heap.stats ha 0))
    (counters (Heap.stats hb 0));
  (* Same sequence must also leave the same durable image. *)
  let same = ref true in
  for a = 0 to 104 do
    if Heap.durable_load ha a <> Heap.durable_load hb a then same := false
  done;
  check_bool "durable images agree" true !same

(* --- Crash injection through cursor operations --- *)

let test_crash_injection () =
  let h = fresh_heap () in
  let cu = Heap.cursor h ~tid:0 in
  Heap.set_trip h 5;
  let crashed = ref false in
  (try
     for i = 0 to 99 do
       Heap.Cursor.store cu i 1;
       Heap.Cursor.write_back cu i;
       Heap.Cursor.fence cu
     done
   with Heap.Crashed -> crashed := true);
  check_bool "cursor op raised Crashed" true !crashed;
  (* The trip-wire disarms itself: the cursor keeps working afterwards. *)
  Heap.Cursor.store cu 200 42;
  Heap.Cursor.persist cu 200;
  check_int "usable after trip" 42 (Heap.durable_load h 200)

(* --- Drain consistency under crashes and observer exceptions --- *)

(* Invariant the sanitizer's shadow state relies on: whatever instant a trip
   fires at, every line whose dirty bit is clear has volatile == durable for
   all of its words. Sweep the trip point across a store/write-back/fence
   workload and check the whole heap at each crash. *)
let test_trip_sweep_consistency () =
  let size_words = 4096 in
  let wpl = Cacheline.words_per_line in
  let check_clean_lines h =
    for line = 0 to (size_words / wpl) - 1 do
      if not (Heap.line_is_dirty h (line * wpl)) then
        for w = line * wpl to ((line + 1) * wpl) - 1 do
          if Heap.durable_load h w <> Heap.peek h w then
            Alcotest.failf "clean line %d: volatile %d <> durable %d at %d"
              line (Heap.peek h w) (Heap.durable_load h w) w
        done
    done
  in
  for trip = 1 to 120 do
    let h = fresh_heap ~size_words () in
    let cu = Heap.cursor h ~tid:0 in
    Heap.set_trip h trip;
    (try
       for i = 0 to 199 do
         let a = i * 11 mod size_words in
         Heap.Cursor.store cu a i;
         if i mod 3 = 0 then Heap.Cursor.write_back cu a;
         if i mod 7 = 0 then Heap.Cursor.fence cu
       done;
       Heap.disarm_trip h
     with Heap.Crashed -> ());
    check_clean_lines h
  done

(* An observer that raises mid-drain (a fail-fast sanitizer aborting on a
   violation) must not corrupt the cursor: the pending buffer is reset, the
   per-line state stays consistent, and the cursor works afterwards. *)
let test_observer_raise_mid_drain () =
  let exception Abort in
  let h = fresh_heap () in
  let cu = Heap.cursor h ~tid:0 in
  let drains = ref 0 in
  let obs =
    Heap.Observer.add h (function
      | Heap.Ev_drain _ ->
          incr drains;
          if !drains = 2 then raise Abort
      | _ -> ())
  in
  for i = 0 to 3 do
    Heap.Cursor.store cu (i * Cacheline.words_per_line) i;
    Heap.Cursor.write_back cu (i * Cacheline.words_per_line)
  done;
  let aborted = try Heap.Cursor.fence cu; false with Abort -> true in
  check_bool "observer exception propagated" true aborted;
  (* The interrupted drain forgot its pending write-backs... *)
  check_int "pending reset" 0 (Heap.Cursor.pending_count cu);
  (* ...and every clean line is volatile == durable. *)
  Heap.Observer.remove h obs;
  for line = 0 to 3 do
    let a = line * Cacheline.words_per_line in
    if not (Heap.line_is_dirty h a) then
      check_int "drained line durable" line (Heap.durable_load h a)
  done;
  (* The cursor remains fully usable. *)
  Heap.Cursor.store cu 900 77;
  Heap.Cursor.persist cu 900;
  check_int "usable after abort" 77 (Heap.durable_load h 900)

let () =
  Alcotest.run "cursor"
    [
      ( "dedup",
        [
          Alcotest.test_case "same line collapses" `Quick test_dedup_same_line;
          Alcotest.test_case "stamp reset after drain" `Quick
            test_dedup_resets_after_drain;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "implicit drain" `Quick test_overflow_implicit_drain;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "cursor vs tid counters" `Quick
            test_counter_equivalence;
        ] );
      ( "crash",
        [
          Alcotest.test_case "trip through cursor" `Quick test_crash_injection;
          Alcotest.test_case "trip sweep: clean lines stay consistent" `Quick
            test_trip_sweep_consistency;
          Alcotest.test_case "observer raise mid-drain" `Quick
            test_observer_raise_mid_drain;
        ] );
    ]
