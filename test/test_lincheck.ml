(* Lincheck regression suite: the checker itself must accept trivially
   correct histories and reject contradictory ones (unit tests on
   [check_key]); every structure x flavor must come out linearizable on
   recorded multi-domain runs; and the durable flavors must come out
   durably linearizable across a mid-stream crash + recovery. *)

module I = Harness.Instance
module L = Sanitizer.Lincheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- check_key unit tests --------------------------------------------- *)

let entry ?(tid = 0) name ~inv ~res ~ret =
  { L.e_tid = tid; name = "t." ^ name; key = 1; inv; res; ret }

let ok_result = function Ok () -> true | Error _ -> false

let seq_sanity () =
  (* insert(1) remove(1) search(absent): fine sequentially. *)
  let h =
    [|
      entry "insert" ~inv:1 ~res:2 ~ret:1;
      entry "remove" ~inv:3 ~res:4 ~ret:1;
      entry "search" ~inv:5 ~res:6 ~ret:(-1);
    |]
  in
  check_bool "sequential history accepted" true (ok_result (L.check_key h))

let seq_contradiction () =
  (* insert succeeded, nothing removed it, search says absent: no order works
     because all three are real-time separated. *)
  let h =
    [|
      entry "insert" ~inv:1 ~res:2 ~ret:1;
      entry "search" ~inv:3 ~res:4 ~ret:(-1);
    |]
  in
  check_bool "contradictory history rejected" false (ok_result (L.check_key h))

let overlap_flexibility () =
  (* Same two ops, overlapping: search may linearize before the insert. *)
  let h =
    [|
      entry "insert" ~inv:1 ~res:4 ~ret:1;
      entry "search" ~inv:2 ~res:3 ~ret:(-1);
    |]
  in
  check_bool "overlapping ops may reorder" true (ok_result (L.check_key h))

let value_consistency () =
  (* Two searches pinning different values with no intervening write. *)
  let h =
    [|
      entry "insert" ~inv:1 ~res:2 ~ret:1;
      entry "search" ~inv:3 ~res:4 ~ret:7;
      entry "search" ~inv:5 ~res:6 ~ret:8;
    |]
  in
  check_bool "conflicting observed values rejected" false
    (ok_result (L.check_key h))

let in_flight_optional () =
  (* An in-flight remove explains the absent search; dropping it would not. *)
  let h =
    [|
      entry "insert" ~inv:1 ~res:2 ~ret:1;
      entry "remove" ~inv:3 ~res:max_int ~ret:Nvm.Heap.op_ret_unknown;
      entry "search" ~inv:4 ~res:5 ~ret:(-1);
    |]
  in
  check_bool "in-flight op linearized when needed" true
    (ok_result (L.check_key h))

let durable_strict () =
  let h = [| entry "insert" ~inv:1 ~res:2 ~ret:1 |] in
  check_bool "strict: completed insert must survive" false
    (ok_result
       (L.check_key ~durable:{ L.recovered = None; buffered = false } h));
  check_bool "strict: surviving insert accepted" true
    (ok_result
       (L.check_key ~durable:{ L.recovered = Some 3; buffered = false } h))

let durable_buffered () =
  (* Buffered (link-cache) semantics: the completed insert's effect may sit
     in the cache at the crash, so recovering 'absent' is legal — the empty
     prefix explains it. *)
  let h = [| entry "insert" ~inv:1 ~res:2 ~ret:1 |] in
  check_bool "buffered: lost suffix accepted" true
    (ok_result
       (L.check_key ~durable:{ L.recovered = None; buffered = true } h));
  (* But a recovered value no linearization ever reaches is still wrong. *)
  let h2 = [| entry "remove" ~inv:1 ~res:2 ~ret:0 |] in
  check_bool "buffered: unreachable recovered state rejected" false
    (ok_result
       (L.check_key ~durable:{ L.recovered = Some 9; buffered = true } h2))

(* ---- live runs: every structure x flavor ------------------------------- *)

let report name o =
  if not (L.ok o) then
    Printf.printf "%s: %s\n%!" name (Format.asprintf "%a" L.pp_outcome o)

let live ?(nthreads = 2) ?(ops_per_thread = 150) structure flavor () =
  let o =
    L.live_check ~nthreads ~ops_per_thread ~key_range:24 ~seed:42 ~structure
      ~flavor ()
  in
  let name =
    Printf.sprintf "%s/%s/%d-domain" (I.structure_name structure)
      (I.flavor_name flavor) nthreads
  in
  report name o;
  check_int (name ^ ": ops recorded") (nthreads * ops_per_thread)
    o.L.ops_recorded;
  check_bool (name ^ ": linearizable") true (L.ok o)

(* ---- durable runs: crash + recovery, lp/lc/nvt/lf ---------------------- *)

let durable structure flavor () =
  let o =
    L.durable_check ~nthreads:2 ~total_ops:200 ~key_range:24 ~seed:5 ~trip:400
      ~structure ~flavor ()
  in
  let name =
    Printf.sprintf "%s/%s/durable" (I.structure_name structure)
      (I.flavor_name flavor)
  in
  report name o;
  check_bool (name ^ ": trip fired mid-run") true o.L.crashed;
  check_bool (name ^ ": durably linearizable") true (L.ok o)

let all4 f flavor tag speed =
  List.map
    (fun s ->
      Alcotest.test_case
        (I.structure_name s ^ "/" ^ I.flavor_name flavor ^ tag)
        speed (f s flavor))
    [ I.List; I.Hash; I.Skiplist; I.Bst ]

let () =
  Alcotest.run "lincheck"
    [
      ( "check-key",
        [
          Alcotest.test_case "sequential sanity" `Quick seq_sanity;
          Alcotest.test_case "sequential contradiction" `Quick
            seq_contradiction;
          Alcotest.test_case "overlap flexibility" `Quick overlap_flexibility;
          Alcotest.test_case "value consistency" `Quick value_consistency;
          Alcotest.test_case "in-flight optional" `Quick in_flight_optional;
          Alcotest.test_case "durable strict" `Quick durable_strict;
          Alcotest.test_case "durable buffered" `Quick durable_buffered;
        ] );
      ( "live",
        all4 live I.Lp "" `Quick @ all4 live I.Lc "" `Quick
        @ all4 live I.Nvt "" `Quick @ all4 live I.Lf "" `Quick
        @ all4 live I.Volatile "" `Quick
        @ all4 (live ~nthreads:4 ~ops_per_thread:100) I.Lp "/4-domain" `Slow
        @ all4 (live ~nthreads:4 ~ops_per_thread:100) I.Lf "/4-domain" `Slow );
      ( "durable",
        all4 durable I.Lp "" `Quick @ all4 durable I.Lc "" `Quick
        @ all4 durable I.Nvt "" `Quick @ all4 durable I.Lf "" `Quick );
    ]
